// Command omnc-fig regenerates the tables and figures of the paper's
// evaluation (Sec. 5). Each figure prints its series as an ASCII CDF plot
// plus the summary statistics the paper quotes, and can optionally be
// written as CSV for external plotting.
//
// Usage:
//
//	omnc-fig -fig 1        # convergence of the distributed rate control
//	omnc-fig -fig 2l       # CDF of throughput gains, lossy network
//	omnc-fig -fig 2r       # CDF of throughput gains, high link quality
//	omnc-fig -fig 3        # CDF of time-averaged queue sizes
//	omnc-fig -fig 4        # CDFs of node and path utility ratios
//	omnc-fig -fig lpgap    # emulated vs optimized throughput (Sec. 5)
//	omnc-fig -fig drift    # extension: throughput under link-quality drift
//	omnc-fig -fig multi    # extension: multi-unicast scaling (aggregate + fairness)
//	omnc-fig -fig faults   # extension: throughput and recovery time under churn
//	omnc-fig -fig schemes  # extension: coding schemes x redundancy on a lossy chain
//	omnc-fig -fig all      # everything (except drift, multi, faults and schemes)
//
// The default scale is laptop-sized (30 sessions, 200 emulated seconds,
// payload-rank fidelity); -full selects the paper's full scale (300
// sessions of 800 s with 1 KB blocks — hours of CPU time).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"omnc/internal/coding"
	"omnc/internal/experiments"
	"omnc/internal/metrics"
	"omnc/internal/profiling"
	"omnc/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1, 2l, 2r, 3, 4, lpgap, all")
		full     = flag.Bool("full", false, "paper scale (300 sessions x 800 s, 1 KB blocks)")
		sessions = flag.Int("sessions", 0, "override session count")
		duration = flag.Float64("duration", 0, "override emulated seconds per session")
		seed     = flag.Int64("seed", 1, "experiment seed")
		mac      = flag.String("mac", "oracle", "channel model: oracle or csma")
		csvDir   = flag.String("csv", "", "directory to write CSV series into")
		workers  = flag.Int("workers", 0, "concurrent session emulations (0 = all cores, 1 = serial); results are identical either way")
		engWork  = flag.Int("engine-workers", 0, "parallel event-engine workers per session (0 = serial engine); results are identical either way")
		report   = flag.Bool("report", false, "collect per-session observability reports and print per-figure totals")
		scheme   = flag.String("scheme", "rlnc", "coding scheme for the comparison figures: rlnc, rlnc-e2e or rs (-fig schemes sweeps all three)")
		redund   = flag.Float64("redundancy", 0, "source emission cap as a factor of the generation size (0 = rateless)")
	)
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-fig:", err)
		os.Exit(1)
	}
	err = run(*fig, *full, *sessions, *duration, *seed, *mac, *csvDir, *workers, *engWork, *report, *scheme, *redund)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-fig:", err)
		os.Exit(1)
	}
}

func run(fig string, full bool, sessions int, duration float64, seed int64, mac, csvDir string, workers, engineWorkers int, report bool,
	schemeName string, redundancy float64) error {
	cfg := experiments.QuickConfig(seed)
	if full {
		cfg = experiments.PaperConfig(seed)
	}
	if sessions > 0 {
		cfg.Sessions = sessions
	}
	if duration > 0 {
		cfg.Duration = duration
	}
	cfg.Workers = workers
	cfg.EngineWorkers = engineWorkers
	cfg.Report = report
	schemeVal, err := coding.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	if err := coding.ValidateRedundancy(redundancy); err != nil {
		return err
	}
	cfg.Scheme = schemeVal
	cfg.Redundancy = redundancy
	switch mac {
	case "oracle", "":
		cfg.MAC = sim.ModeOracle
	case "csma":
		cfg.MAC = sim.ModeCSMA
	default:
		return fmt.Errorf("unknown -mac %q (want oracle or csma)", mac)
	}

	switch fig {
	case "1":
		return fig1(csvDir)
	case "2l":
		return comparisonFigs(cfg, csvDir, "2l")
	case "2r":
		cfg.MeanQuality = 0.91
		return comparisonFigs(cfg, csvDir, "2r")
	case "3":
		return comparisonFigs(cfg, csvDir, "3")
	case "4":
		return comparisonFigs(cfg, csvDir, "4")
	case "lpgap":
		cfg.SolveLPGap = true
		return comparisonFigs(cfg, csvDir, "lpgap")
	case "drift":
		return driftFig(cfg)
	case "multi":
		return multiFig(cfg, full, csvDir)
	case "faults":
		return faultsFig(cfg, csvDir)
	case "schemes":
		return schemesFig(cfg, csvDir)
	case "all":
		if err := fig1(csvDir); err != nil {
			return err
		}
		cfg.SolveLPGap = true
		if err := comparisonFigs(cfg, csvDir, "2l", "3", "4", "lpgap"); err != nil {
			return err
		}
		hq := cfg
		hq.MeanQuality = 0.91
		hq.SolveLPGap = false
		return comparisonFigs(hq, csvDir, "2r")
	default:
		return fmt.Errorf("unknown -fig %q", fig)
	}
}

func fig1(csvDir string) error {
	res, err := experiments.Fig1Convergence(experiments.Fig1Config{})
	if err != nil {
		return err
	}
	fmt.Printf("Figure 1: convergence of the distributed rate-control algorithm\n")
	fmt.Printf("(capacity 1e5 B/s; converged=%v after %d iterations; gamma=%.0f B/s)\n\n",
		res.Converged, res.Iterations, res.Gamma)
	// Print the trace as a table every few iterations.
	fmt.Printf("%-6s", "iter")
	for _, id := range res.Nodes {
		fmt.Printf("  node%-3d", id)
	}
	fmt.Println()
	step := res.Iterations / 12
	if step < 1 {
		step = 1
	}
	for t := 0; t < res.Iterations; t += step {
		fmt.Printf("%-6d", t+1)
		for i := range res.Nodes {
			fmt.Printf("  %-7.0f", res.Series[i][t])
		}
		fmt.Println()
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rows := [][]string{headerRow(res.Nodes)}
	for t := 0; t < res.Iterations; t++ {
		row := []string{strconv.Itoa(t + 1)}
		for i := range res.Nodes {
			row = append(row, fmt.Sprintf("%.2f", res.Series[i][t]))
		}
		rows = append(rows, row)
	}
	return writeCSV(filepath.Join(csvDir, "fig1_convergence.csv"), rows)
}

func headerRow(nodes []int) []string {
	row := []string{"iteration"}
	for _, id := range nodes {
		row = append(row, fmt.Sprintf("node%d_bytes_per_sec", id))
	}
	return row
}

func comparisonFigs(cfg experiments.Config, csvDir string, figs ...string) error {
	fmt.Printf("Running %d sessions on %d nodes (density %.0f, mean quality target %s, MAC %s)...\n",
		cfg.Sessions, cfg.Nodes, cfg.Density, qualityLabel(cfg.MeanQuality), macLabel(cfg.MAC))
	cfg.Progress = metrics.NewProgress(cfg.Sessions)
	stopTicker := startProgressTicker(cfg.Progress)
	c, err := experiments.RunComparison(cfg)
	stopTicker()
	if err != nil {
		return err
	}
	fmt.Printf("network mean link quality: %.3f\n", c.Network.MeanLinkQuality())
	if it := c.RateIterationsSummary(); it.N > 0 {
		fmt.Printf("rate-control iterations (paper mean: 91): %s\n", it)
	}
	fmt.Println()
	for _, f := range figs {
		switch f {
		case "2l", "2r":
			label := "lossy network"
			if f == "2r" {
				label = "high link quality"
			}
			curves := c.GainCDFs()
			fmt.Println(metrics.ASCIIPlot(
				fmt.Sprintf("Figure 2 (%s): CDF of throughput gain over ETX routing", label),
				"throughput gain", 4, curves))
			if err := writeCurves(csvDir, "fig"+f+"_gains.csv", "gain", curves); err != nil {
				return err
			}
		case "3":
			curves := c.QueueCDFs()
			xMax := 1.0
			for _, cdf := range curves {
				if cdf.Max() > xMax {
					xMax = cdf.Max()
				}
			}
			fmt.Println(metrics.ASCIIPlot(
				"Figure 3: CDF of time-averaged queue size", "queue size (packets)", xMax, curves))
			if err := writeCurves(csvDir, "fig3_queues.csv", "queue", curves); err != nil {
				return err
			}
		case "4":
			nodeCurves := c.NodeUtilityCDFs()
			fmt.Println(metrics.ASCIIPlot(
				"Figure 4 (left): CDF of node utility ratio", "node utility ratio", 1, nodeCurves))
			pathCurves := c.PathUtilityCDFs()
			fmt.Println(metrics.ASCIIPlot(
				"Figure 4 (right): CDF of path utility ratio", "path utility ratio", 1, pathCurves))
			if err := writeCurves(csvDir, "fig4_node_utility.csv", "node_utility", nodeCurves); err != nil {
				return err
			}
			if err := writeCurves(csvDir, "fig4_path_utility.csv", "path_utility", pathCurves); err != nil {
				return err
			}
		case "lpgap":
			fmt.Printf("Emulated OMNC / optimized sUnicast throughput: %s\n\n", c.LPGapSummary())
		}
	}
	printReportTotals(c)
	return nil
}

// printReportTotals summarizes the per-session observability reports per
// protocol; it prints nothing when the comparison ran without Config.Report.
func printReportTotals(c *experiments.Comparison) {
	totals := c.ReportTotals()
	if len(totals) == 0 {
		return
	}
	protos := make([]string, 0, len(totals))
	for p := range totals {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	fmt.Println("Report totals (summed over sessions):")
	fmt.Printf("%-10s %-10s %-12s %-12s %-12s %-12s %-12s %s\n",
		"protocol", "sessions", "tx frames", "rx packets", "innovative", "discarded", "airtime (s)", "replans")
	for _, p := range protos {
		t := totals[p]
		fmt.Printf("%-10s %-10d %-12d %-12d %-12d %-12d %-12.1f %d\n",
			p, t.Sessions, t.TxFrames, t.RxPackets, t.Innovative, t.Discarded, t.AirtimeSeconds, t.Replans)
	}
	fmt.Println()
}

// driftFig runs the link-dynamics extension: OMNC throughput as per-epoch
// link drift intensifies, re-initiating node selection and rates each epoch.
func driftFig(cfg experiments.Config) error {
	cfg.Sessions = minInt(cfg.Sessions, 8)
	// Shorter generations keep per-epoch throughput measurable: an epoch is
	// a fraction of the session, and only fully decoded generations count.
	cfg.Coding.GenerationSize = 16
	cfg.AirPacketSize = 16 + 1024
	res, err := experiments.DriftSweep(experiments.DriftSweepConfig{
		Base:           cfg,
		Jitters:        []float64{0, 0.1, 0.2, 0.3, 0.4},
		Epochs:         3,
		ReinitOverhead: 5,
	})
	if err != nil {
		return err
	}
	fmt.Println("Extension: OMNC throughput under link-quality drift")
	fmt.Println("(3 epochs per session; node selection and rate control re-initiated each epoch; 5 s overhead charged)")
	fmt.Printf("\n%-10s %s\n", "jitter", "throughput (bytes/s)")
	for i, j := range res.Jitters {
		fmt.Printf("%-10.2f %s\n", j, res.Throughput[i])
	}
	fmt.Println()
	return nil
}

// multiFig runs the multi-unicast scaling extension: several unicast
// sessions of one protocol contend on one shared engine, and the series
// report aggregate throughput and Jain's fairness index versus the session
// count. OMNC allocates rates jointly; the baselines contend uncoordinated.
// -sessions caps the largest session count.
func multiFig(cfg experiments.Config, full bool, csvDir string) error {
	counts := []int{1, 2, 4, 6}
	if cfg.Sessions > 0 && cfg.Sessions < counts[len(counts)-1] {
		kept := counts[:0]
		for _, c := range counts {
			if c <= cfg.Sessions {
				kept = append(kept, c)
			}
		}
		counts = kept
	}
	if len(counts) == 0 {
		return fmt.Errorf("-sessions %d leaves no session counts to sweep", cfg.Sessions)
	}
	trials := 2
	if full {
		trials = 3
	}
	mc := experiments.MultiConfig{
		Nodes:         cfg.Nodes,
		Density:       cfg.Density,
		MeanQuality:   cfg.MeanQuality,
		SessionCounts: counts,
		Trials:        trials,
		MinHops:       cfg.MinHops,
		MaxHops:       cfg.MaxHops,
		Duration:      cfg.Duration,
		Capacity:      cfg.Capacity,
		CBRRate:       cfg.CBRRate,
		Coding:        cfg.Coding,
		AirPacketSize: cfg.AirPacketSize,
		Protocols:     cfg.Protocols,
		MAC:           cfg.MAC,
		RateOptions:   cfg.RateOptions,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		EngineWorkers: cfg.EngineWorkers,
		Progress:      metrics.NewProgress(len(counts) * trials),
	}
	fmt.Printf("Running multi-unicast scaling on %d nodes (counts %v, %d trials each, MAC %s)...\n",
		mc.Nodes, counts, trials, macLabel(mc.MAC))
	stopTicker := startProgressTicker(mc.Progress)
	sc, err := experiments.RunMultiScaling(mc)
	stopTicker()
	if err != nil {
		return err
	}

	protos := append([]string(nil), sc.Config.Protocols...)
	sort.Strings(protos)
	fmt.Println("\nExtension: aggregate throughput and Jain fairness vs concurrent sessions")
	fmt.Printf("%-10s", "sessions")
	for _, p := range protos {
		fmt.Printf("  %-22s", p+" (B/s, Jain)")
	}
	fmt.Println()
	for _, pt := range sc.Points {
		fmt.Printf("%-10d", pt.Sessions)
		for _, p := range protos {
			fmt.Printf("  %-22s", fmt.Sprintf("%.0f  %.3f",
				pt.AggregateThroughput[p], pt.JainFairness[p]))
		}
		fmt.Println()
	}
	fmt.Println()

	if csvDir == "" {
		return nil
	}
	rows := [][]string{{"protocol", "sessions", "aggregate_bytes_per_sec", "jain_fairness"}}
	for _, p := range protos {
		for _, pt := range sc.Points {
			rows = append(rows, []string{
				p,
				strconv.Itoa(pt.Sessions),
				fmt.Sprintf("%.5f", pt.AggregateThroughput[p]),
				fmt.Sprintf("%.5f", pt.JainFairness[p]),
			})
		}
	}
	return writeCSV(filepath.Join(csvDir, "fig_multi.csv"), rows)
}

// faultsFig runs the fault-injection extension: every protocol's throughput
// and mean time-to-recover as node churn and link instability rise. Each
// (session, churn rate) cell draws a randomized fault plan with the session's
// endpoints protected; churn 0 is the exact fault-free path.
func faultsFig(cfg experiments.Config, csvDir string) error {
	sessions := minInt(cfg.Sessions, 4)
	churn := []float64{0, 2, 5}
	fc := experiments.FaultsConfig{
		Nodes:         cfg.Nodes,
		Density:       cfg.Density,
		MeanQuality:   cfg.MeanQuality,
		Sessions:      sessions,
		MinHops:       cfg.MinHops,
		MaxHops:       cfg.MaxHops,
		Duration:      cfg.Duration,
		Capacity:      cfg.Capacity,
		CBRRate:       cfg.CBRRate,
		Coding:        cfg.Coding,
		AirPacketSize: cfg.AirPacketSize,
		ChurnRates:    churn,
		Protocols:     cfg.Protocols,
		MAC:           cfg.MAC,
		RateOptions:   cfg.RateOptions,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		EngineWorkers: cfg.EngineWorkers,
		Progress:      metrics.NewProgress(sessions * len(churn)),
	}
	fmt.Printf("Running fault churn on %d nodes (%d sessions x churn %v per 100 s, MAC %s)...\n",
		fc.Nodes, sessions, churn, macLabel(fc.MAC))
	stopTicker := startProgressTicker(fc.Progress)
	res, err := experiments.RunFaultChurn(fc)
	stopTicker()
	if err != nil {
		return err
	}

	protos := append([]string(nil), res.Config.Protocols...)
	sort.Strings(protos)
	fmt.Println("\nExtension: throughput and time-to-recover vs fault churn")
	fmt.Printf("%-12s", "churn/100s")
	for _, p := range protos {
		fmt.Printf("  %-24s", p+" (B/s, recover s)")
	}
	fmt.Println()
	for _, pt := range res.Points {
		fmt.Printf("%-12.0f", pt.Churn)
		for _, p := range protos {
			fmt.Printf("  %-24s", fmt.Sprintf("%.0f  %.2f", pt.Throughput[p], pt.Recovery[p]))
		}
		fmt.Println()
	}
	fmt.Println()

	if csvDir == "" {
		return nil
	}
	rows := [][]string{{"protocol", "churn_per_100s", "throughput_bytes_per_sec", "mean_recovery_s"}}
	for _, p := range protos {
		for _, pt := range res.Points {
			rows = append(rows, []string{
				p,
				fmt.Sprintf("%.5f", pt.Churn),
				fmt.Sprintf("%.5f", pt.Throughput[p]),
				fmt.Sprintf("%.5f", pt.Recovery[p]),
			})
		}
	}
	return writeCSV(filepath.Join(csvDir, "fig_faults.csv"), rows)
}

// schemesFig runs the coding-scheme extension: OMNC throughput on an explicit
// lossy relay chain as the coding scheme (full-recoding RLNC, end-to-end RLNC,
// source-only Reed-Solomon), the source redundancy factor, and the chain
// length vary. The chain makes the strategy difference visible: every
// delivered byte crossed every hop, so relays that can only repeat stored
// packets fall behind in-network recoding as hops accumulate.
func schemesFig(cfg experiments.Config, csvDir string) error {
	sc := experiments.SchemesConfig{
		Duration:      cfg.Duration,
		Capacity:      cfg.Capacity,
		CBRRate:       cfg.CBRRate,
		MAC:           cfg.MAC,
		RateOptions:   cfg.RateOptions,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		EngineWorkers: cfg.EngineWorkers,
	}
	sc.Progress = metrics.NewProgress(sc.CellCount())
	fmt.Printf("Running coding schemes on lossy chains (%d cells, MAC %s)...\n",
		sc.CellCount(), macLabel(sc.MAC))
	stopTicker := startProgressTicker(sc.Progress)
	res, err := experiments.RunSchemesSweep(sc)
	stopTicker()
	if err != nil {
		return err
	}

	schemes := res.Config.Schemes
	fmt.Println("\nExtension: OMNC throughput by coding scheme, redundancy and chain length")
	fmt.Printf("(per-hop delivery %.2f; redundancy 0 = rateless source)\n", res.Config.PerHopQuality)
	for _, red := range res.Config.Redundancies {
		fmt.Printf("\nredundancy %s\n", redundancyLabel(red))
		fmt.Printf("%-8s", "hops")
		for _, s := range schemes {
			fmt.Printf("  %-14s", s.String()+" (B/s)")
		}
		fmt.Println()
		for _, hops := range res.Config.Hops {
			fmt.Printf("%-8d", hops)
			for _, s := range schemes {
				pt := res.Point(s, red, hops)
				fmt.Printf("  %-14.0f", pt.Throughput)
			}
			fmt.Println()
		}
	}
	fmt.Println()

	if csvDir == "" {
		return nil
	}
	rows := [][]string{{"scheme", "redundancy", "hops", "throughput_bytes_per_sec", "generations_decoded"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			p.Scheme.String(),
			fmt.Sprintf("%.2f", p.Redundancy),
			strconv.Itoa(p.Hops),
			fmt.Sprintf("%.5f", p.Throughput),
			fmt.Sprintf("%.5f", p.GenerationsDecoded),
		})
	}
	return writeCSV(filepath.Join(csvDir, "fig_schemes.csv"), rows)
}

// redundancyLabel formats a source emission cap for humans.
func redundancyLabel(r float64) string {
	if r == 0 {
		return "rateless"
	}
	return fmt.Sprintf("%.2fx", r)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func qualityLabel(q float64) string {
	if q <= 0 {
		return "default ~0.58"
	}
	return fmt.Sprintf("%.2f", q)
}

func macLabel(m sim.Mode) string {
	if m == sim.ModeCSMA {
		return "csma"
	}
	return "oracle"
}

// startProgressTicker reports sweep progress to stderr while a long
// comparison runs; the returned func stops the reporting goroutine.
func startProgressTicker(p *metrics.Progress) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				fmt.Fprintf(os.Stderr, "omnc-fig: %s sessions done\n", p)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

func writeCurves(dir, name, xName string, curves map[string]*metrics.CDF) error {
	if dir == "" {
		return nil
	}
	// Protocols in sorted order: the CSV is byte-stable for a fixed seed
	// (the golden-file test depends on it; map order is not deterministic).
	protos := make([]string, 0, len(curves))
	for proto := range curves {
		protos = append(protos, proto)
	}
	sort.Strings(protos)
	rows := [][]string{{"protocol", xName, "cdf"}}
	for _, proto := range protos {
		for _, pt := range curves[proto].Points(200) {
			rows = append(rows, []string{proto, fmt.Sprintf("%.5f", pt.X), fmt.Sprintf("%.5f", pt.F)})
		}
	}
	return writeCSV(filepath.Join(dir, name), rows)
}

func writeCSV(path string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}
