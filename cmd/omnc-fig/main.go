// Command omnc-fig regenerates the tables and figures of the paper's
// evaluation (Sec. 5). Each figure prints its series as an ASCII CDF plot
// plus the summary statistics the paper quotes, and can optionally be
// written as CSV for external plotting.
//
// Usage:
//
//	omnc-fig -fig 1        # convergence of the distributed rate control
//	omnc-fig -fig 2l       # CDF of throughput gains, lossy network
//	omnc-fig -fig 2r       # CDF of throughput gains, high link quality
//	omnc-fig -fig 3        # CDF of time-averaged queue sizes
//	omnc-fig -fig 4        # CDFs of node and path utility ratios
//	omnc-fig -fig lpgap    # emulated vs optimized throughput (Sec. 5)
//	omnc-fig -fig drift    # extension: throughput under link-quality drift
//	omnc-fig -fig multi    # extension: multi-unicast scaling (aggregate + fairness)
//	omnc-fig -fig faults   # extension: throughput and recovery time under churn
//	omnc-fig -fig schemes  # extension: coding schemes x redundancy on a lossy chain
//	omnc-fig -fig all      # everything (except drift, multi, faults and schemes)
//
// The default scale is laptop-sized (30 sessions, 200 emulated seconds,
// payload-rank fidelity); -full selects the paper's full scale (300
// sessions of 800 s with 1 KB blocks — hours of CPU time).
//
// Every figure runs through internal/jobs, the dispatcher behind
// omnc-serve: the CSVs written here are the byte-identical artifacts a
// daemon job for the same Spec lands in its run directory (the golden-file
// tests pin this). This command owns only the terminal rendering.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"omnc/internal/cliflags"
	"omnc/internal/experiments"
	"omnc/internal/jobs"
	"omnc/internal/metrics"
	"omnc/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1, 2l, 2r, 3, 4, lpgap, all")
		full     = flag.Bool("full", false, "paper scale (300 sessions x 800 s, 1 KB blocks)")
		sessions = flag.Int("sessions", 0, "override session count")
		duration = flag.Float64("duration", 0, "override emulated seconds per session")
		seed     = flag.Int64("seed", 1, "experiment seed")
		mac      = flag.String("mac", "oracle", "channel model: oracle or csma")
		csvDir   = flag.String("csv", "", "directory to write CSV series into")
		report   = flag.Bool("report", false, "collect per-session observability reports and print per-figure totals")
	)
	pool := cliflags.RegisterPool(flag.CommandLine, true)
	cod := cliflags.RegisterCoding(flag.CommandLine,
		"coding scheme for the comparison figures: rlnc, rlnc-e2e or rs (-fig schemes sweeps all three)",
		"source emission cap as a factor of the generation size (0 = rateless)")
	app := cliflags.New("omnc-fig", flag.CommandLine)
	app.Main(func(ctx context.Context) error {
		return run(ctx, *fig, *full, *sessions, *duration, *seed, *mac, *csvDir,
			pool.Workers, pool.EngineWorkers, *report, cod)
	})
}

func run(ctx context.Context, fig string, full bool, sessions int, duration float64, seed int64, mac, csvDir string,
	workers, engineWorkers int, report bool, cod *cliflags.CodingFlags) error {
	base := jobs.Spec{
		Version: jobs.SpecVersion,
		Seed:    seed, Full: full, Sessions: sessions, Duration: duration,
		Workers: workers, EngineWorkers: engineWorkers, Report: report,
	}
	// The Spec's zero MAC is the oracle default; keep flag-built specs on the
	// zero value so they hash like hand-written ones.
	if mac != "oracle" && mac != "" {
		base.MAC = mac
	}
	cod.Apply(&base)

	switch fig {
	case "1":
		base.Kind = jobs.KindFig1
		return fig1(ctx, base, csvDir)
	case "2l", "2r", "3", "4", "lpgap":
		base.Kind = jobs.KindComparison
		base.Figures = []string{fig}
		return comparisonFigs(ctx, base, csvDir, fig)
	case "drift":
		base.Kind = jobs.KindDrift
		return driftFig(ctx, base, csvDir)
	case "multi":
		base.Kind = jobs.KindMulti
		return multiFig(ctx, base, csvDir)
	case "faults":
		base.Kind = jobs.KindFaults
		return faultsFig(ctx, base, csvDir)
	case "schemes":
		base.Kind = jobs.KindSchemes
		return schemesFig(ctx, base, csvDir)
	case "all":
		f1 := base
		f1.Kind = jobs.KindFig1
		if err := fig1(ctx, f1, csvDir); err != nil {
			return err
		}
		cmp := base
		cmp.Kind = jobs.KindComparison
		cmp.Figures = []string{"2l", "3", "4", "lpgap"}
		if err := comparisonFigs(ctx, cmp, csvDir, "2l", "3", "4", "lpgap"); err != nil {
			return err
		}
		hq := base
		hq.Kind = jobs.KindComparison
		hq.Figures = []string{"2r"}
		return comparisonFigs(ctx, hq, csvDir, "2r")
	default:
		return fmt.Errorf("unknown -fig %q", fig)
	}
}

func fig1(ctx context.Context, spec jobs.Spec, csvDir string) error {
	r, err := jobs.Run(ctx, spec)
	if err != nil {
		return err
	}
	res := r.Fig1
	fmt.Printf("Figure 1: convergence of the distributed rate-control algorithm\n")
	fmt.Printf("(capacity 1e5 B/s; converged=%v after %d iterations; gamma=%.0f B/s)\n\n",
		res.Converged, res.Iterations, res.Gamma)
	// Print the trace as a table every few iterations.
	fmt.Printf("%-6s", "iter")
	for _, id := range res.Nodes {
		fmt.Printf("  node%-3d", id)
	}
	fmt.Println()
	step := res.Iterations / 12
	if step < 1 {
		step = 1
	}
	for t := 0; t < res.Iterations; t += step {
		fmt.Printf("%-6d", t+1)
		for i := range res.Nodes {
			fmt.Printf("  %-7.0f", res.Series[i][t])
		}
		fmt.Println()
	}
	fmt.Println()
	return writeArtifact(csvDir, r, "fig1_convergence.csv")
}

func comparisonFigs(ctx context.Context, spec jobs.Spec, csvDir string, figs ...string) error {
	// The preamble derives from the effective config, so vet the Spec before
	// using it (jobs.Run would only catch it after the banner printed).
	if err := spec.Validate(); err != nil {
		return err
	}
	cfg := spec.EffectiveComparison()
	fmt.Printf("Running %d sessions on %d nodes (density %.0f, mean quality target %s, MAC %s)...\n",
		cfg.Sessions, cfg.Nodes, cfg.Density, qualityLabel(cfg.MeanQuality), macLabel(cfg.MAC))
	progress := metrics.NewProgress(spec.Units())
	stopTicker := cliflags.StartProgressTicker("omnc-fig", progress)
	r, err := jobs.RunWithProgress(ctx, spec, progress)
	stopTicker()
	if err != nil {
		return err
	}
	c := r.Comparison
	fmt.Printf("network mean link quality: %.3f\n", c.Network.MeanLinkQuality())
	if it := c.RateIterationsSummary(); it.N > 0 {
		fmt.Printf("rate-control iterations (paper mean: 91): %s\n", it)
	}
	fmt.Println()
	for _, f := range figs {
		switch f {
		case "2l", "2r":
			label := "lossy network"
			if f == "2r" {
				label = "high link quality"
			}
			fmt.Println(metrics.ASCIIPlot(
				fmt.Sprintf("Figure 2 (%s): CDF of throughput gain over ETX routing", label),
				"throughput gain", 4, c.GainCDFs()))
			if err := writeArtifact(csvDir, r, "fig"+f+"_gains.csv"); err != nil {
				return err
			}
		case "3":
			curves := c.QueueCDFs()
			xMax := 1.0
			for _, cdf := range curves {
				if cdf.Max() > xMax {
					xMax = cdf.Max()
				}
			}
			fmt.Println(metrics.ASCIIPlot(
				"Figure 3: CDF of time-averaged queue size", "queue size (packets)", xMax, curves))
			if err := writeArtifact(csvDir, r, "fig3_queues.csv"); err != nil {
				return err
			}
		case "4":
			fmt.Println(metrics.ASCIIPlot(
				"Figure 4 (left): CDF of node utility ratio", "node utility ratio", 1, c.NodeUtilityCDFs()))
			fmt.Println(metrics.ASCIIPlot(
				"Figure 4 (right): CDF of path utility ratio", "path utility ratio", 1, c.PathUtilityCDFs()))
			if err := writeArtifact(csvDir, r, "fig4_node_utility.csv"); err != nil {
				return err
			}
			if err := writeArtifact(csvDir, r, "fig4_path_utility.csv"); err != nil {
				return err
			}
		case "lpgap":
			fmt.Printf("Emulated OMNC / optimized sUnicast throughput: %s\n\n", c.LPGapSummary())
		}
	}
	printReportTotals(c)
	return nil
}

// printReportTotals summarizes the per-session observability reports per
// protocol; it prints nothing when the comparison ran without reports.
func printReportTotals(c *experiments.Comparison) {
	totals := c.ReportTotals()
	if len(totals) == 0 {
		return
	}
	protos := make([]string, 0, len(totals))
	for p := range totals {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	fmt.Println("Report totals (summed over sessions):")
	fmt.Printf("%-10s %-10s %-12s %-12s %-12s %-12s %-12s %s\n",
		"protocol", "sessions", "tx frames", "rx packets", "innovative", "discarded", "airtime (s)", "replans")
	for _, p := range protos {
		t := totals[p]
		fmt.Printf("%-10s %-10d %-12d %-12d %-12d %-12d %-12.1f %d\n",
			p, t.Sessions, t.TxFrames, t.RxPackets, t.Innovative, t.Discarded, t.AirtimeSeconds, t.Replans)
	}
	fmt.Println()
}

// driftFig prints the link-dynamics extension: OMNC throughput as per-epoch
// link drift intensifies, re-initiating node selection and rates each epoch.
func driftFig(ctx context.Context, spec jobs.Spec, csvDir string) error {
	r, err := jobs.Run(ctx, spec)
	if err != nil {
		return err
	}
	res := r.Drift
	fmt.Println("Extension: OMNC throughput under link-quality drift")
	fmt.Println("(3 epochs per session; node selection and rate control re-initiated each epoch; 5 s overhead charged)")
	fmt.Printf("\n%-10s %s\n", "jitter", "throughput (bytes/s)")
	for i, j := range res.Jitters {
		fmt.Printf("%-10.2f %s\n", j, res.Throughput[i])
	}
	fmt.Println()
	return writeArtifact(csvDir, r, "fig_drift.csv")
}

// multiFig prints the multi-unicast scaling extension: several unicast
// sessions of one protocol contend on one shared engine, and the series
// report aggregate throughput and Jain's fairness index versus the session
// count. OMNC allocates rates jointly; the baselines contend uncoordinated.
// -sessions caps the largest session count.
func multiFig(ctx context.Context, spec jobs.Spec, csvDir string) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	cfg := spec.EffectiveComparison()
	counts, trials := spec.MultiPlan()
	if len(counts) == 0 {
		return fmt.Errorf("-sessions %d leaves no session counts to sweep", spec.Sessions)
	}
	fmt.Printf("Running multi-unicast scaling on %d nodes (counts %v, %d trials each, MAC %s)...\n",
		cfg.Nodes, counts, trials, macLabel(cfg.MAC))
	progress := metrics.NewProgress(spec.Units())
	stopTicker := cliflags.StartProgressTicker("omnc-fig", progress)
	r, err := jobs.RunWithProgress(ctx, spec, progress)
	stopTicker()
	if err != nil {
		return err
	}
	sc := r.Multi

	protos := append([]string(nil), sc.Config.Protocols...)
	sort.Strings(protos)
	fmt.Println("\nExtension: aggregate throughput and Jain fairness vs concurrent sessions")
	fmt.Printf("%-10s", "sessions")
	for _, p := range protos {
		fmt.Printf("  %-22s", p+" (B/s, Jain)")
	}
	fmt.Println()
	for _, pt := range sc.Points {
		fmt.Printf("%-10d", pt.Sessions)
		for _, p := range protos {
			fmt.Printf("  %-22s", fmt.Sprintf("%.0f  %.3f",
				pt.AggregateThroughput[p], pt.JainFairness[p]))
		}
		fmt.Println()
	}
	fmt.Println()
	return writeArtifact(csvDir, r, "fig_multi.csv")
}

// faultsFig prints the fault-injection extension: every protocol's
// throughput and mean time-to-recover as node churn and link instability
// rise. Each (session, churn rate) cell draws a randomized fault plan with
// the session's endpoints protected; churn 0 is the exact fault-free path.
func faultsFig(ctx context.Context, spec jobs.Spec, csvDir string) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	cfg := spec.EffectiveComparison()
	sessions, churn := spec.FaultsPlan()
	fmt.Printf("Running fault churn on %d nodes (%d sessions x churn %v per 100 s, MAC %s)...\n",
		cfg.Nodes, sessions, churn, macLabel(cfg.MAC))
	progress := metrics.NewProgress(spec.Units())
	stopTicker := cliflags.StartProgressTicker("omnc-fig", progress)
	r, err := jobs.RunWithProgress(ctx, spec, progress)
	stopTicker()
	if err != nil {
		return err
	}
	res := r.Faults

	protos := append([]string(nil), res.Config.Protocols...)
	sort.Strings(protos)
	fmt.Println("\nExtension: throughput and time-to-recover vs fault churn")
	fmt.Printf("%-12s", "churn/100s")
	for _, p := range protos {
		fmt.Printf("  %-24s", p+" (B/s, recover s)")
	}
	fmt.Println()
	for _, pt := range res.Points {
		fmt.Printf("%-12.0f", pt.Churn)
		for _, p := range protos {
			fmt.Printf("  %-24s", fmt.Sprintf("%.0f  %.2f", pt.Throughput[p], pt.Recovery[p]))
		}
		fmt.Println()
	}
	fmt.Println()
	return writeArtifact(csvDir, r, "fig_faults.csv")
}

// schemesFig prints the coding-scheme extension: OMNC throughput on an
// explicit lossy relay chain as the coding scheme (full-recoding RLNC,
// end-to-end RLNC, source-only Reed-Solomon), the source redundancy factor,
// and the chain length vary. The chain makes the strategy difference
// visible: every delivered byte crossed every hop, so relays that can only
// repeat stored packets fall behind in-network recoding as hops accumulate.
func schemesFig(ctx context.Context, spec jobs.Spec, csvDir string) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	cfg := spec.EffectiveComparison()
	fmt.Printf("Running coding schemes on lossy chains (%d cells, MAC %s)...\n",
		spec.Units(), macLabel(cfg.MAC))
	progress := metrics.NewProgress(spec.Units())
	stopTicker := cliflags.StartProgressTicker("omnc-fig", progress)
	r, err := jobs.RunWithProgress(ctx, spec, progress)
	stopTicker()
	if err != nil {
		return err
	}
	res := r.Schemes

	schemes := res.Config.Schemes
	fmt.Println("\nExtension: OMNC throughput by coding scheme, redundancy and chain length")
	fmt.Printf("(per-hop delivery %.2f; redundancy 0 = rateless source)\n", res.Config.PerHopQuality)
	for _, red := range res.Config.Redundancies {
		fmt.Printf("\nredundancy %s\n", redundancyLabel(red))
		fmt.Printf("%-8s", "hops")
		for _, s := range schemes {
			fmt.Printf("  %-14s", s.String()+" (B/s)")
		}
		fmt.Println()
		for _, hops := range res.Config.Hops {
			fmt.Printf("%-8d", hops)
			for _, s := range schemes {
				pt := res.Point(s, red, hops)
				fmt.Printf("  %-14.0f", pt.Throughput)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	return writeArtifact(csvDir, r, "fig_schemes.csv")
}

// redundancyLabel formats a source emission cap for humans.
func redundancyLabel(r float64) string {
	if r == 0 {
		return "rateless"
	}
	return fmt.Sprintf("%.2fx", r)
}

func qualityLabel(q float64) string {
	if q <= 0 {
		return "default ~0.58"
	}
	return fmt.Sprintf("%.2f", q)
}

func macLabel(m sim.Mode) string {
	if m == sim.ModeCSMA {
		return "csma"
	}
	return "oracle"
}

// writeArtifact copies one of the run's landed artifacts into the CSV
// directory — the same bytes an omnc-serve job for this Spec stores.
func writeArtifact(dir string, r *jobs.Result, name string) error {
	if dir == "" {
		return nil
	}
	art := r.Artifact(name)
	if art == nil {
		return fmt.Errorf("run produced no %s artifact", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, art.Data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
