package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omnc/internal/cliflags"
	"omnc/internal/report"
)

func TestRunRandomSession(t *testing.T) {
	if err := run(context.Background(), "omnc", 100, 6, 3, -1, -1, 3, 8, 60, 2e4, 1e4, 0, "", 1, 0, 0, "", "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitEndpointsETX(t *testing.T) {
	// Deterministic topology: find a pair via the random path first.
	if err := run(context.Background(), "etx", 100, 6, 3, -1, -1, 3, 8, 60, 2e4, 0, 0, "", 1, 0, 0, "", "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSessionSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "session.svg")
	if err := run(context.Background(), "more", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, svg, 1, 0, 0, "", "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "#2ca02c") {
		t.Fatal("no highlighted forwarders in session SVG")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run(context.Background(), "bogus", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0, "", 1, 0, 0, "", "", codf("rlnc", 0)); err == nil {
		t.Fatal("unknown protocol must fail")
	}
}

func TestRunBadQuality(t *testing.T) {
	if err := run(context.Background(), "omnc", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0.05, "", 1, 0, 0, "", "", codf("rlnc", 0)); err == nil {
		t.Fatal("bad quality target must fail")
	}
}

func TestRunParallelTrials(t *testing.T) {
	if err := run(context.Background(), "etx", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, "", 4, 2, 0, "", "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelEngine(t *testing.T) {
	if err := run(context.Background(), "omnc", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 1e4, 0, "", 1, 0, 2, "", "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadTrials(t *testing.T) {
	if err := run(context.Background(), "etx", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, "", 0, 1, 0, "", "", codf("rlnc", 0)); err == nil {
		t.Fatal("zero trials must fail")
	}
}

func TestRunWithFaultPlan(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	const doc = `{"seed": 9, "events": [
		{"at": 5, "kind": "crash", "node": 10},
		{"at": 8, "kind": "burst", "from": 3, "to": 4, "dur": 6, "bad_factor": 0.1},
		{"at": 12, "kind": "recover", "node": 10}
	]}`
	if err := os.WriteFile(plan, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "omnc", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 1e4, 0, "", 1, 0, 0, plan, "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFaultPlan(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	// Out-of-order events: Validate must reject, and run must surface it.
	const doc = `{"events": [
		{"at": 10, "kind": "crash", "node": 1},
		{"at": 5, "kind": "recover", "node": 1}
	]}`
	if err := os.WriteFile(plan, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "omnc", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0, "", 1, 0, 0, plan, "", codf("rlnc", 0)); err == nil {
		t.Fatal("invalid fault plan must fail")
	}
	if err := run(context.Background(), "omnc", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0, "", 1, 0, 0,
		filepath.Join(t.TempDir(), "missing.json"), "", codf("rlnc", 0)); err == nil {
		t.Fatal("missing fault plan file must fail")
	}
}

func TestRunSchemeFlag(t *testing.T) {
	for _, scheme := range []string{"rlnc-e2e", "rs"} {
		if err := run(context.Background(), "omnc", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 1e4, 0, "", 1, 0, 0, "", "", codf(scheme, 2)); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestRunRejectsBadSchemeAndRedundancy(t *testing.T) {
	if err := run(context.Background(), "omnc", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0, "", 1, 0, 0, "", "", codf("fountain", 0)); err == nil {
		t.Fatal("unknown scheme must fail")
	}
	if err := run(context.Background(), "omnc", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0, "", 1, 0, 0, "", "", codf("rlnc", 0.5)); err == nil {
		t.Fatal("sub-unit redundancy must fail")
	}
}

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run(context.Background(), "omnc", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 1e4, 0, "", 1, 0, 0, "", out, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Protocol != "omnc" || rep.TotalTx() == 0 || rep.GenerationsDecoded == 0 {
		t.Fatalf("report looks empty: %+v", rep)
	}
}

func TestRunRejectsReportWithTrials(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run(context.Background(), "etx", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, "", 4, 2, 0, "", out, codf("rlnc", 0)); err == nil {
		t.Fatal("-report with -trials > 1 must fail")
	}
}

// codf builds the coding flag block the way flag parsing would.
func codf(scheme string, redundancy float64) *cliflags.CodingFlags {
	return &cliflags.CodingFlags{Scheme: scheme, Redundancy: redundancy}
}
