package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRandomSession(t *testing.T) {
	if err := run("omnc", 100, 6, 3, -1, -1, 3, 8, 60, 2e4, 1e4, 0, "", 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitEndpointsETX(t *testing.T) {
	// Deterministic topology: find a pair via the random path first.
	if err := run("etx", 100, 6, 3, -1, -1, 3, 8, 60, 2e4, 0, 0, "", 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSessionSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "session.svg")
	if err := run("more", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, svg, 1, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "#2ca02c") {
		t.Fatal("no highlighted forwarders in session SVG")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run("bogus", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0, "", 1, 0); err == nil {
		t.Fatal("unknown protocol must fail")
	}
}

func TestRunBadQuality(t *testing.T) {
	if err := run("omnc", 60, 6, 1, -1, -1, 3, 8, 30, 2e4, 0, 0.05, "", 1, 0); err == nil {
		t.Fatal("bad quality target must fail")
	}
}

func TestRunParallelTrials(t *testing.T) {
	if err := run("etx", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, "", 4, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadTrials(t *testing.T) {
	if err := run("etx", 100, 6, 3, -1, -1, 3, 8, 40, 2e4, 0, 0, "", 0, 1); err == nil {
		t.Fatal("zero trials must fail")
	}
}
