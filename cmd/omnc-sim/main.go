// Command omnc-sim emulates a single unicast session on a random lossy
// wireless network and prints its statistics — a microscope for one
// protocol run, where omnc-fig aggregates hundreds.
//
// Usage:
//
//	omnc-sim -proto omnc                 # random session, OMNC
//	omnc-sim -proto more -seed 7         # same session, MORE
//	omnc-sim -src 12 -dst 91 -proto etx  # explicit endpoints
//	omnc-sim -trials 16 -workers 4       # 16 loss realizations, 4 at a time
//	omnc-sim -report out.json            # per-node/per-link observability report
//	omnc-sim -cpuprofile cpu.prof        # profile the run (also -memprofile, -pprof-http)
//
// The session runs through internal/jobs (kind "session"), the same
// dispatcher omnc-serve uses, so any omnc-sim invocation is reproducible by
// POSTing the equivalent Spec to a daemon; the seed streams are shared, so
// the numbers come out identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"omnc"
	"omnc/internal/cliflags"
	"omnc/internal/jobs"
	"omnc/internal/metrics"
	"omnc/internal/topology"
)

func main() {
	var (
		proto    = flag.String("proto", "omnc", "protocol: omnc, more, oldmore, etx")
		nodes    = flag.Int("nodes", 300, "deployment size")
		density  = flag.Float64("density", 6, "expected nodes per range disk")
		seed     = flag.Int64("seed", 1, "topology and session seed")
		src      = flag.Int("src", -1, "source node (-1 = random with hop constraint)")
		dst      = flag.Int("dst", -1, "destination node (-1 = random with hop constraint)")
		minHops  = flag.Int("min-hops", 4, "minimum hop distance for random endpoints")
		maxHops  = flag.Int("max-hops", 10, "maximum hop distance for random endpoints")
		duration = flag.Float64("duration", 200, "emulated seconds")
		capacity = flag.Float64("capacity", 2e4, "channel capacity (bytes/s)")
		cbr      = flag.Float64("cbr", 1e4, "CBR workload rate (bytes/s, 0 = backlogged)")
		quality  = flag.Float64("quality", 0, "target mean link quality (0 = default lossy)")
		svgPath  = flag.String("svg", "", "render the session's forwarder subgraph as SVG to this path")
		trials   = flag.Int("trials", 1, "independent loss realizations of the same session")
		faultsAt = flag.String("faults", "", "JSON fault plan to inject (node crashes, link flaps, burst loss)")
		reportAt = flag.String("report", "", "write the session's observability report as JSON to this path")
	)
	pool := cliflags.RegisterPool(flag.CommandLine, true)
	cod := cliflags.RegisterCoding(flag.CommandLine,
		"coding scheme: rlnc (full recoding), rlnc-e2e (no recoding), rs (source-only Reed-Solomon)",
		"coded packets per generation as a factor of the generation size (0 = rateless)")
	app := cliflags.New("omnc-sim", flag.CommandLine)
	app.Main(func(ctx context.Context) error {
		return run(ctx, *proto, *nodes, *density, *seed, *src, *dst, *minHops, *maxHops,
			*duration, *capacity, *cbr, *quality, *svgPath, *trials, pool.Workers, pool.EngineWorkers,
			*faultsAt, *reportAt, cod)
	})
}

func run(ctx context.Context, proto string, nodes int, density float64, seed int64, src, dst, minHops, maxHops int,
	duration, capacity, cbr, quality float64, svgPath string, trials, workers, engineWorkers int,
	faultsPath, reportPath string, cod *cliflags.CodingFlags) error {
	if trials < 1 {
		return fmt.Errorf("-trials must be at least 1, got %d", trials)
	}
	redundancy := cod.Redundancy
	scheme, err := omnc.ParseScheme(cod.Scheme)
	if err != nil {
		return err
	}
	if reportPath != "" && trials > 1 {
		return fmt.Errorf("-report captures a single session; it cannot be combined with -trials %d", trials)
	}
	var plan *omnc.FaultPlan
	if faultsPath != "" {
		data, err := os.ReadFile(faultsPath)
		if err != nil {
			return err
		}
		if plan, err = omnc.DecodeFaultPlan(data); err != nil {
			return fmt.Errorf("%s: %w", faultsPath, err)
		}
	}

	spec := jobs.Spec{
		Version: jobs.SpecVersion, Kind: jobs.KindSession,
		Seed: seed, Nodes: nodes, Density: density, MeanQuality: quality,
		MinHops: minHops, MaxHops: maxHops,
		Duration: duration, Capacity: capacity,
		Trials: trials, Workers: workers, EngineWorkers: engineWorkers,
		Protocol: proto, Faults: plan, Report: reportPath != "",
	}
	// The flag spells "backlogged" as 0; the Spec reserves 0 for its default
	// CBR rate and uses negative for backlogged.
	if cbr == 0 {
		spec.CBRRate = -1
	} else {
		spec.CBRRate = cbr
	}
	if src >= 0 && dst >= 0 {
		spec.Src, spec.Dst = &src, &dst
	}
	cod.Apply(&spec)

	res, err := jobs.Run(ctx, spec)
	if err != nil {
		return err
	}
	nw, sg := res.Network, res.Subgraph
	src, dst = *res.Src, *res.Dst

	fmt.Printf("network: %d nodes, density %.1f, mean link quality %.3f\n",
		nw.Size(), nw.MeanDegree()+1, nw.MeanLinkQuality())
	fmt.Printf("session: %d -> %d (%d selected forwarders, %d links, %.0f candidate paths)\n",
		src, dst, sg.Size(), len(sg.Links), sg.PathCount())
	if svgPath != "" {
		if err := renderSessionSVG(nw, sg, src, dst, svgPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
	if plan != nil {
		fmt.Printf("fault plan: %d events from %s\n", len(plan.Events), faultsPath)
	}
	if scheme != omnc.SchemeRLNC || redundancy != 0 {
		fmt.Printf("coding scheme: %s, redundancy %s\n", scheme, redundancyLabel(redundancy))
	}
	if spec.Field != "" {
		fmt.Printf("coefficient field: GF(2^%s)\n", spec.Field)
	}

	if trials > 1 {
		return printTrials(res.Session, trials)
	}

	st := res.Session[0]
	fmt.Printf("\nprotocol:            %s\n", st.Policy)
	fmt.Printf("throughput:          %.0f bytes/s\n", st.Throughput)
	fmt.Printf("generations decoded: %d (over %.0f emulated seconds)\n", st.GenerationsDecoded, st.Duration)
	if st.Gamma > 0 {
		fmt.Printf("optimized gamma:     %.0f bytes/s (rate control: %d iterations)\n",
			st.Gamma, st.RateIterations)
	}
	if st.TotalReceived > 0 {
		fmt.Printf("innovative ratio:    %.2f (%d of %d receptions)\n",
			float64(st.InnovativeReceived)/float64(st.TotalReceived),
			st.InnovativeReceived, st.TotalReceived)
	}
	fmt.Printf("mean queue:          %.2f packets\n", st.MeanQueue)
	fmt.Printf("node utility:        %.2f\n", st.NodeUtility)
	fmt.Printf("path utility:        %.2f\n", st.PathUtility)
	if reportPath != "" {
		art := res.Artifact("report.json")
		if art == nil {
			return fmt.Errorf("reporting was requested but the session produced no report")
		}
		if err := os.WriteFile(reportPath, art.Data, 0o644); err != nil {
			return err
		}
		fmt.Printf("report:              %d tx frames, %d rx, %d innovative, %d discarded, %.1f s airtime -> %s\n",
			st.Report.TotalTx(), st.Report.TotalRx(), st.Report.TotalInnovative(),
			st.Report.TotalDiscarded(), st.Report.MAC.AirtimeSeconds, reportPath)
	}
	return nil
}

// printTrials prints the per-trial throughputs plus a summary. Trial i's
// protocol seed is derived from (seed, i) inside internal/jobs, so the
// output is identical for every -workers value.
func printTrials(stats []*omnc.SessionStats, trials int) error {
	fmt.Printf("\nprotocol: %s, %d trials\n", stats[0].Policy, trials)
	fmt.Printf("%-7s %-18s %-12s %s\n", "trial", "throughput (B/s)", "mean queue", "generations")
	tps := make([]float64, trials)
	for i, st := range stats {
		tps[i] = st.Throughput
		fmt.Printf("%-7d %-18.0f %-12.2f %d\n", i, st.Throughput, st.MeanQueue, st.GenerationsDecoded)
	}
	fmt.Printf("\nthroughput summary:  %s\n", metrics.Summarize(tps))
	return nil
}

// redundancyLabel prints a redundancy factor, spelling out the rateless
// default.
func redundancyLabel(r float64) string {
	if r <= 0 {
		return "rateless"
	}
	return fmt.Sprintf("%.2fx", r)
}

// renderSessionSVG draws the deployment with the selected forwarders
// highlighted.
func renderSessionSVG(nw *omnc.Network, sg *omnc.Subgraph, src, dst int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nw.RenderSVG(f, topology.SVGOptions{
		ShowLinks: true,
		Highlight: sg.Nodes,
		Src:       src,
		Dst:       dst,
	})
}
