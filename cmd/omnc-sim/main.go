// Command omnc-sim emulates a single unicast session on a random lossy
// wireless network and prints its statistics — a microscope for one
// protocol run, where omnc-fig aggregates hundreds.
//
// Usage:
//
//	omnc-sim -proto omnc                 # random session, OMNC
//	omnc-sim -proto more -seed 7         # same session, MORE
//	omnc-sim -src 12 -dst 91 -proto etx  # explicit endpoints
//	omnc-sim -trials 16 -workers 4       # 16 loss realizations, 4 at a time
//	omnc-sim -report out.json            # per-node/per-link observability report
//	omnc-sim -cpuprofile cpu.prof        # profile the run (also -memprofile, -pprof-http)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"omnc"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/profiling"
	"omnc/internal/seedmix"
	"omnc/internal/topology"
)

// RNG streams derived from the -seed flag via seedmix: endpoint placement
// and per-trial loss processes draw from separate streams, so the same base
// seed replays the same session under independent loss realizations.
const (
	streamSimPlacement int64 = 100
	streamSimTrial     int64 = 101
)

func main() {
	var (
		proto    = flag.String("proto", "omnc", "protocol: omnc, more, oldmore, etx")
		nodes    = flag.Int("nodes", 300, "deployment size")
		density  = flag.Float64("density", 6, "expected nodes per range disk")
		seed     = flag.Int64("seed", 1, "topology and session seed")
		src      = flag.Int("src", -1, "source node (-1 = random with hop constraint)")
		dst      = flag.Int("dst", -1, "destination node (-1 = random with hop constraint)")
		minHops  = flag.Int("min-hops", 4, "minimum hop distance for random endpoints")
		maxHops  = flag.Int("max-hops", 10, "maximum hop distance for random endpoints")
		duration = flag.Float64("duration", 200, "emulated seconds")
		capacity = flag.Float64("capacity", 2e4, "channel capacity (bytes/s)")
		cbr      = flag.Float64("cbr", 1e4, "CBR workload rate (bytes/s, 0 = backlogged)")
		quality  = flag.Float64("quality", 0, "target mean link quality (0 = default lossy)")
		svgPath  = flag.String("svg", "", "render the session's forwarder subgraph as SVG to this path")
		trials   = flag.Int("trials", 1, "independent loss realizations of the same session")
		workers  = flag.Int("workers", 0, "concurrent trials (0 = all cores); results are identical either way")
		engWork  = flag.Int("engine-workers", 0, "parallel event-engine workers per session (0 = serial engine); results are identical either way")
		faultsAt = flag.String("faults", "", "JSON fault plan to inject (node crashes, link flaps, burst loss)")
		reportAt = flag.String("report", "", "write the session's observability report as JSON to this path")
		scheme   = flag.String("scheme", "rlnc", "coding scheme: rlnc (full recoding), rlnc-e2e (no recoding), rs (source-only Reed-Solomon)")
		redund   = flag.Float64("redundancy", 0, "coded packets per generation as a factor of the generation size (0 = rateless)")
	)
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-sim:", err)
		os.Exit(1)
	}
	err = run(*proto, *nodes, *density, *seed, *src, *dst, *minHops, *maxHops,
		*duration, *capacity, *cbr, *quality, *svgPath, *trials, *workers, *engWork, *faultsAt, *reportAt,
		*scheme, *redund)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-sim:", err)
		os.Exit(1)
	}
}

func run(proto string, nodes int, density float64, seed int64, src, dst, minHops, maxHops int,
	duration, capacity, cbr, quality float64, svgPath string, trials, workers, engineWorkers int,
	faultsPath, reportPath, schemeName string, redundancy float64) error {
	if trials < 1 {
		return fmt.Errorf("-trials must be at least 1, got %d", trials)
	}
	scheme, err := omnc.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	if reportPath != "" && trials > 1 {
		return fmt.Errorf("-report captures a single session; it cannot be combined with -trials %d", trials)
	}
	var plan *omnc.FaultPlan
	if faultsPath != "" {
		data, err := os.ReadFile(faultsPath)
		if err != nil {
			return err
		}
		if plan, err = omnc.DecodeFaultPlan(data); err != nil {
			return fmt.Errorf("%s: %w", faultsPath, err)
		}
	}
	nw, err := omnc.GenerateNetwork(nodes, density, seed)
	if err != nil {
		return err
	}
	if quality > 0 {
		phy, err := omnc.DefaultPHY().CalibrateGain(quality)
		if err != nil {
			return err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return err
		}
	}
	fmt.Printf("network: %d nodes, density %.1f, mean link quality %.3f\n",
		nw.Size(), nw.MeanDegree()+1, nw.MeanLinkQuality())

	if src < 0 || dst < 0 {
		src, dst, err = pickSession(nw, seed, minHops, maxHops)
		if err != nil {
			return err
		}
	}
	sg, err := omnc.SelectForwarders(nw, src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("session: %d -> %d (%d selected forwarders, %d links, %.0f candidate paths)\n",
		src, dst, sg.Size(), len(sg.Links), sg.PathCount())
	if svgPath != "" {
		if err := renderSessionSVG(nw, sg, src, dst, svgPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}

	cfg := omnc.SessionConfig{
		Scheme:              scheme,
		Redundancy:          redundancy,
		Capacity:            capacity,
		Duration:            duration,
		CBRRate:             cbr,
		Seed:                seed,
		QueueSampleInterval: 0.5,
		Faults:              plan,
		Report:              reportPath != "",
		EngineWorkers:       engineWorkers,
	}
	if plan != nil {
		fmt.Printf("fault plan: %d events from %s\n", len(plan.Events), faultsPath)
	}
	// Rank fidelity by default: exact innovation behaviour at a fraction of
	// the arithmetic cost; air time still models full 1 KB payloads.
	cfg.Coding = omnc.DefaultCodingParams()
	cfg.Coding.BlockSize = 8
	cfg.AirPacketSize = cfg.Coding.GenerationSize + 1024

	var protoVal omnc.Protocol
	switch proto {
	case "omnc":
		protoVal = omnc.OMNC(omnc.RateOptions{})
	case "more":
		protoVal = omnc.MORE()
	case "oldmore":
		protoVal = omnc.OldMORE()
	case "etx":
		protoVal = omnc.ETX()
	default:
		return fmt.Errorf("unknown protocol %q", proto)
	}
	if scheme != omnc.SchemeRLNC || redundancy != 0 {
		fmt.Printf("coding scheme: %s, redundancy %s\n", scheme, redundancyLabel(redundancy))
	}
	runProto := func(cfg omnc.SessionConfig) (*omnc.SessionStats, error) {
		return omnc.Run(nw, src, dst, protoVal, cfg)
	}

	if trials > 1 {
		return runTrials(runProto, cfg, seed, trials, workers)
	}

	st, err := runProto(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\nprotocol:            %s\n", st.Policy)
	fmt.Printf("throughput:          %.0f bytes/s\n", st.Throughput)
	fmt.Printf("generations decoded: %d (over %.0f emulated seconds)\n", st.GenerationsDecoded, st.Duration)
	if st.Gamma > 0 {
		fmt.Printf("optimized gamma:     %.0f bytes/s (rate control: %d iterations)\n",
			st.Gamma, st.RateIterations)
	}
	if st.TotalReceived > 0 {
		fmt.Printf("innovative ratio:    %.2f (%d of %d receptions)\n",
			float64(st.InnovativeReceived)/float64(st.TotalReceived),
			st.InnovativeReceived, st.TotalReceived)
	}
	fmt.Printf("mean queue:          %.2f packets\n", st.MeanQueue)
	fmt.Printf("node utility:        %.2f\n", st.NodeUtility)
	fmt.Printf("path utility:        %.2f\n", st.PathUtility)
	if reportPath != "" {
		if st.Report == nil {
			return fmt.Errorf("reporting was requested but the session produced no report")
		}
		buf, err := json.MarshalIndent(st.Report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report:              %d tx frames, %d rx, %d innovative, %d discarded, %.1f s airtime -> %s\n",
			st.Report.TotalTx(), st.Report.TotalRx(), st.Report.TotalInnovative(),
			st.Report.TotalDiscarded(), st.Report.MAC.AirtimeSeconds, reportPath)
	}
	return nil
}

// runTrials replays the session under trials independent loss realizations
// on a bounded worker pool and prints the per-trial throughputs plus a
// summary. Trial i's protocol seed is derived from (seed, i), so the output
// is identical for every -workers value.
func runTrials(runProto func(omnc.SessionConfig) (*omnc.SessionStats, error),
	cfg omnc.SessionConfig, seed int64, trials, workers int) error {
	stats := make([]*omnc.SessionStats, trials)
	err := parallel.ForEach(trials, parallel.Workers(workers), func(i int) error {
		tcfg := cfg
		tcfg.Seed = seedmix.Derive(seed, streamSimTrial, int64(i))
		st, err := runProto(tcfg)
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		stats[i] = st
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nprotocol: %s, %d trials\n", stats[0].Policy, trials)
	fmt.Printf("%-7s %-18s %-12s %s\n", "trial", "throughput (B/s)", "mean queue", "generations")
	tps := make([]float64, trials)
	for i, st := range stats {
		tps[i] = st.Throughput
		fmt.Printf("%-7d %-18.0f %-12.2f %d\n", i, st.Throughput, st.MeanQueue, st.GenerationsDecoded)
	}
	fmt.Printf("\nthroughput summary:  %s\n", metrics.Summarize(tps))
	return nil
}

// redundancyLabel prints a redundancy factor, spelling out the rateless
// default.
func redundancyLabel(r float64) string {
	if r <= 0 {
		return "rateless"
	}
	return fmt.Sprintf("%.2fx", r)
}

// renderSessionSVG draws the deployment with the selected forwarders
// highlighted.
func renderSessionSVG(nw *omnc.Network, sg *omnc.Subgraph, src, dst int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nw.RenderSVG(f, topology.SVGOptions{
		ShowLinks: true,
		Highlight: sg.Nodes,
		Src:       src,
		Dst:       dst,
	})
}

// pickSession samples endpoints with the paper's hop constraint.
func pickSession(nw *omnc.Network, seed int64, minHops, maxHops int) (int, int, error) {
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	rng := rand.New(rand.NewSource(seedmix.Derive(seed, streamSimPlacement)))
	for attempt := 0; attempt < 5000; attempt++ {
		src := rng.Intn(nw.Size())
		dst := rng.Intn(nw.Size())
		if src == dst {
			continue
		}
		h := graph.HopCounts(adj, src)[dst]
		if h < minHops || h > maxHops {
			continue
		}
		if _, err := omnc.SelectForwarders(nw, src, dst); err != nil {
			continue
		}
		return src, dst, nil
	}
	return 0, 0, fmt.Errorf("no session with %d-%d hops found", minHops, maxHops)
}
