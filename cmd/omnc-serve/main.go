// Command omnc-serve is the experiment daemon: a single process that owns a
// crash-safe job queue, a bounded pool of experiment workers and a
// content-addressed results store, behind a small JSON/HTTP API. Every
// experiment the CLIs run (omnc-sim sessions, omnc-fig figures, omnc-topo
// deployments, loopback drift sessions, benchmark recordings) is expressed
// as the same versioned Spec, so a daemon job reproduces the CLI's output
// byte for byte — same seeds, same artifacts.
//
//	omnc-serve -addr 127.0.0.1:8377 -data ./omnc-data -jobs 2
//
// API:
//
//	POST   /jobs                        submit a Spec (?priority=N orders dispatch)
//	GET    /jobs                        all jobs with live progress
//	GET    /jobs/{id}                   one job (progress snapshot while running)
//	DELETE /jobs/{id}                   cancel a pending or running job
//	GET    /jobs/{id}/events            server-sent events until terminal state
//	GET    /runs                        index of landed results
//	GET    /runs/{id}                   one landed run (summary + artifact list)
//	GET    /runs/{id}/artifacts/{name}  one artifact's bytes
//	GET    /healthz                     build info, CPUs, queue counts, live workers
//
// The queue journal and the results store live under -data and survive
// restarts: jobs that were running when the process died are requeued on
// the next start, and re-running a Spec lands in the same run directory
// with identical bytes (runs are addressed by the hash of their Spec).
// Cancellations are journaled the same way, so a job canceled mid-run
// stays canceled across a restart instead of being requeued. Jobs that
// fail with a transient (retryable) error re-run up to -max-retries times
// with exponential backoff starting at -retry-backoff, then fail
// terminally. SIGINT/SIGTERM drain: claiming stops immediately, running
// jobs get -drain to finish, and whatever misses the deadline is requeued.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"omnc/internal/cliflags"
	"omnc/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8377", "listen address")
		dataDir    = flag.String("data", "omnc-data", "state directory (queue journal and results store)")
		workers    = flag.Int("jobs", 2, "concurrent experiment jobs")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for running jobs before they are requeued")
		maxRetries = flag.Int("max-retries", 2, "re-runs granted to a job failing with a transient error before it fails terminally")
		retryBase  = flag.Duration("retry-backoff", time.Second, "backoff before the first retry; doubles per further retry")
	)
	app := cliflags.New("omnc-serve", flag.CommandLine)
	app.Main(func(ctx context.Context) error {
		return serve(ctx, *addr, *dataDir, *workers, *drain, *maxRetries, *retryBase)
	})
}

func serve(ctx context.Context, addr, dataDir string, workers int, drain time.Duration, maxRetries int, retryBase time.Duration) error {
	if workers < 1 {
		workers = 1
	}
	q, err := jobs.OpenQueue(filepath.Join(dataDir, "queue.jsonl"))
	if err != nil {
		return err
	}
	defer q.Close()
	if maxRetries < 0 {
		maxRetries = 0
	}
	q.MaxRetries = maxRetries
	if retryBase > 0 {
		q.RetryBase = retryBase
	}
	st, err := jobs.OpenStore(filepath.Join(dataDir, "runs"))
	if err != nil {
		return err
	}
	s := newServer(q, st)

	// Workers claim until claimCtx ends and run until runCtx ends; the gap
	// between the two is the drain window for in-flight jobs. claimCtx
	// derives from ctx so both the signal path and the serve-error path can
	// stop the claiming loop.
	claimCtx, cancelClaim := context.WithCancel(ctx)
	defer cancelClaim()
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(claimCtx, runCtx)
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("omnc-serve: listening on http://%s (data %s, %d workers)\n", ln.Addr(), dataDir, workers)
	srv := &http.Server{Handler: s.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died while ctx is still live: stop claiming before
		// cancelling runs, or idle workers would block on claimCtx forever
		// and a mid-job worker would loop claim -> instant cancel -> requeue,
		// growing the journal unboundedly.
		cancelClaim()
		cancelRun()
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, give running jobs the drain
	// window, then cancel whatever is left so it requeues.
	fmt.Printf("omnc-serve: shutting down (drain %v)\n", drain)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
		cancelRun()
		<-done
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
