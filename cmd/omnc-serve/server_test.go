package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"omnc/internal/jobs"
)

// testDaemon is a server with one worker running against temp state.
type testDaemon struct {
	s      *server
	queue  *jobs.Queue
	ts     *httptest.Server
	cancel context.CancelFunc
	wg     *sync.WaitGroup
}

func startDaemon(t *testing.T) *testDaemon {
	return startDaemonOpts(t, 1, nil)
}

// startDaemonOpts boots a daemon with the given worker count; configure (if
// non-nil) runs after construction but before any worker starts, so tests
// can tune retries or interpose fault injection race-free.
func startDaemonOpts(t *testing.T, workers int, configure func(s *server, q *jobs.Queue)) *testDaemon {
	t.Helper()
	dir := t.TempDir()
	q, err := jobs.OpenQueue(filepath.Join(dir, "queue.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := jobs.OpenStore(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(q, st)
	if configure != nil {
		configure(s, q)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(ctx, ctx)
		}()
	}
	ts := httptest.NewServer(s.handler())
	d := &testDaemon{s: s, queue: q, ts: ts, cancel: cancel, wg: &wg}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
		q.Close()
	})
	return d
}

func (d *testDaemon) post(t *testing.T, body string) (jobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(d.ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func (d *testDaemon) get(t *testing.T, path string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(d.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// waitDone polls the job endpoint until the job reaches a terminal state.
func (d *testDaemon) waitDone(t *testing.T, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st jobStatus
		if resp := d.get(t, "/jobs/"+id, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
		}
		switch st.State {
		case jobs.JobDone:
			return st
		case jobs.JobFailed:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobStatus{}
}

func TestSubmitRunAndFetchArtifact(t *testing.T) {
	d := startDaemon(t)
	st, resp := d.post(t, `{"version":1,"kind":"topo","seed":3,"nodes":60,"density":6}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	fin := d.waitDone(t, st.ID)
	if fin.Run == "" {
		t.Fatal("done job has no run id")
	}

	var runs struct {
		Runs []jobs.StoredRun `json:"runs"`
	}
	d.get(t, "/runs", &runs)
	if len(runs.Runs) != 1 || runs.Runs[0].ID != fin.Run {
		t.Fatalf("runs index = %+v", runs.Runs)
	}

	var run jobs.StoredRun
	if resp := d.get(t, "/runs/"+fin.Run, &run); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s: %d", fin.Run, resp.StatusCode)
	}
	if run.Kind != "topo" || len(run.Artifacts) != 1 || run.Artifacts[0].Name != "links.csv" {
		t.Fatalf("run head = %+v", run)
	}

	resp2, err := http.Get(d.ts.URL + "/runs/" + fin.Run + "/artifacts/links.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("artifact content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp2.Body)
	if !strings.HasPrefix(buf.String(), "from,to,probability,distance_m\n") {
		t.Fatalf("artifact bytes start %q", buf.String()[:40])
	}

	// The daemon's landed bytes must equal what a direct jobs.Run of the
	// same Spec produces.
	direct, err := jobs.Run(context.Background(), jobs.Spec{
		Version: jobs.SpecVersion, Kind: jobs.KindTopo, Seed: 3, Nodes: 60, Density: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), direct.Artifact("links.csv").Data) {
		t.Fatal("daemon artifact differs from direct jobs.Run")
	}
}

// TestDaemonMatchesGoldenFigure is the service-level twin of omnc-fig's
// golden-file test: a comparison job submitted over HTTP must land the
// byte-identical fig2l_gains.csv the CLI writes for the same flags.
func TestDaemonMatchesGoldenFigure(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "omnc-fig", "testdata", "fig2l_gains.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t)
	st, resp := d.post(t, `{"version":1,"kind":"comparison","seed":7,"sessions":2,"duration":60,"figures":["2l"],"workers":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	fin := d.waitDone(t, st.ID)

	resp2, err := http.Get(d.ts.URL + "/runs/" + fin.Run + "/artifacts/fig2l_gains.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp2.Body)
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("daemon-landed figure differs from the CLI golden file (%d vs %d bytes)",
			buf.Len(), len(golden))
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	d := startDaemon(t)
	for _, body := range []string{
		`not json`,
		`{"version":1,"kind":"warp"}`,
		`{"version":1,"kind":"topo","sessionz":3}`,
		`{"version":9,"kind":"topo"}`,
	} {
		if _, resp := d.post(t, body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: got %d, want 400", body, resp.StatusCode)
		}
	}
	var list struct {
		Jobs []jobStatus `json:"jobs"`
	}
	d.get(t, "/jobs", &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("rejected specs were enqueued: %+v", list.Jobs)
	}
}

func TestJobEventsStreamToCompletion(t *testing.T) {
	d := startDaemon(t)
	st, _ := d.post(t, `{"version":1,"kind":"topo","seed":5,"nodes":60,"density":6}`)

	resp, err := http.Get(d.ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var last jobStatus
	events := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatal(err)
		}
	}
	// The stream closes itself after the terminal event.
	if events == 0 {
		t.Fatal("no events streamed")
	}
	if last.State != jobs.JobDone {
		t.Fatalf("final streamed state = %s", last.State)
	}
	if last.Run == "" {
		t.Fatal("final event missing run id")
	}
}

func TestHealthz(t *testing.T) {
	d := startDaemon(t)
	var h struct {
		Status string `json:"status"`
		Build  struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		CPUs int `json:"cpus"`
	}
	if resp := d.get(t, "/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Build.GoVersion == "" || h.CPUs < 1 {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestUnknownJobAndRunAre404(t *testing.T) {
	d := startDaemon(t)
	if resp := d.get(t, "/jobs/j999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	if resp := d.get(t, "/runs/0123456789abcdef", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d", resp.StatusCode)
	}
	if resp := d.get(t, "/runs/../escape", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal run id: %d", resp.StatusCode)
	}
}

// TestShutdownRequeuesRunningJob exercises the drain path: cancel the run
// context while a long comparison is in flight and the job must return to
// pending with a requeue recorded, ready for the next daemon.
func TestShutdownRequeuesRunningJob(t *testing.T) {
	dir := t.TempDir()
	q, err := jobs.OpenQueue(filepath.Join(dir, "queue.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := jobs.OpenStore(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(q, st)
	j, err := q.Submit(jobs.Spec{
		Version: jobs.SpecVersion, Kind: jobs.KindComparison,
		Seed: 1, Sessions: 8, Duration: 200, Figures: []string{"2l"},
	})
	if err != nil {
		t.Fatal(err)
	}

	claimCtx, stopClaim := context.WithCancel(context.Background())
	runCtx, stopRun := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.worker(claimCtx, runCtx)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if got, _ := q.Get(j.ID); got.State == jobs.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	stopClaim()
	stopRun()
	wg.Wait()

	got, _ := q.Get(j.ID)
	if got.State != jobs.JobPending {
		t.Fatalf("after shutdown job is %s, want pending", got.State)
	}
	if got.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", got.Requeues)
	}
	q.Close()

	// The next daemon picks the journal up with the job claimable again.
	q2, err := jobs.OpenQueue(filepath.Join(dir, "queue.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	j2, ok, err := q2.Claim()
	if err != nil || !ok {
		t.Fatalf("claim after restart: ok=%v err=%v", ok, err)
	}
	if j2.ID != j.ID {
		t.Fatalf("claimed %s, want %s", j2.ID, j.ID)
	}
}

func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real listener")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, "127.0.0.1:0", dir, 1, time.Second, 2, time.Second)
	}()
	// The port is dynamic; probe the journal to know the daemon is up, then
	// stop it — the wiring (queue, store, listener, drain) is what this
	// exercises; handler behaviour is covered via httptest above.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "queue.jsonl")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never created its state")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if _, err := os.Stat(filepath.Join(dir, "runs")); err != nil {
		t.Fatal(err)
	}
}
