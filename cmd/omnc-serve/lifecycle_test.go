package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"omnc/internal/jobs"
	"omnc/internal/metrics"
)

// del issues DELETE /jobs/{id} and decodes the body on success.
func (d *testDaemon) del(t *testing.T, id string) (jobStatus, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, d.ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

// waitState polls the job until it reaches want or the deadline passes.
func (d *testDaemon) waitState(t *testing.T, id string, want jobs.JobState) jobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st jobStatus
		if resp := d.get(t, "/jobs/"+id, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobStatus{}
}

// longSpec is a comparison job big enough to still be running when the test
// cancels it.
const longSpec = `{"version":1,"kind":"comparison","seed":1,"sessions":8,"duration":200,"figures":["2l"]}`

func TestCancelPendingJobHTTP(t *testing.T) {
	// No workers: the job stays pending until the DELETE lands.
	d := startDaemonOpts(t, 0, nil)
	st, resp := d.post(t, `{"version":1,"kind":"topo","seed":3,"nodes":60,"density":6}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	got, resp := d.del(t, st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s: %d", st.ID, resp.StatusCode)
	}
	if got.State != jobs.JobCanceled || got.FinishedAt == nil {
		t.Fatalf("after DELETE: %+v, want canceled with FinishedAt", got.Job)
	}
	// GET agrees, and a second DELETE is an idempotent 200.
	var again jobStatus
	d.get(t, "/jobs/"+st.ID, &again)
	if again.State != jobs.JobCanceled {
		t.Fatalf("GET after cancel: %s", again.State)
	}
	if _, resp := d.del(t, st.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("second DELETE: %d", resp.StatusCode)
	}

	// The SSE stream treats canceled as terminal: it emits the canceled
	// status and closes itself.
	sse, err := http.Get(d.ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	sc := bufio.NewScanner(sse.Body)
	var last jobStatus
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatal(err)
			}
		}
	}
	if last.State != jobs.JobCanceled {
		t.Fatalf("SSE final state = %s, want canceled", last.State)
	}
}

func TestCancelRunningJobHTTP(t *testing.T) {
	d := startDaemon(t)
	st, _ := d.post(t, longSpec)
	d.waitState(t, st.ID, jobs.JobRunning)

	got, resp := d.del(t, st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job: %d", resp.StatusCode)
	}
	if got.State != jobs.JobCanceled {
		t.Fatalf("DELETE returned state %s, want canceled", got.State)
	}
	// The worker must observe the per-job cancel, leave the terminal state
	// alone (no requeue, no fail) and return to the pool: a fresh quick job
	// completes on the same single worker.
	quick, _ := d.post(t, `{"version":1,"kind":"topo","seed":4,"nodes":60,"density":6}`)
	fin := d.waitDone(t, quick.ID)
	if fin.Run == "" {
		t.Fatal("post-cancel job landed no run")
	}
	var after jobStatus
	d.get(t, "/jobs/"+st.ID, &after)
	if after.State != jobs.JobCanceled || after.Requeues != 0 {
		t.Fatalf("canceled job drifted: %+v", after.Job)
	}
	// The live bits are cleaned up once the worker drains the job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.s.mu.Lock()
		stale := len(d.s.progress) + len(d.s.cancels)
		d.s.mu.Unlock()
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress/cancel registries still hold %d entries", stale)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelConflictsAndUnknown(t *testing.T) {
	d := startDaemon(t)
	if _, resp := d.del(t, "j999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}
	st, _ := d.post(t, `{"version":1,"kind":"topo","seed":5,"nodes":60,"density":6}`)
	d.waitDone(t, st.ID)
	if _, resp := d.del(t, st.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE done job: %d, want 409", resp.StatusCode)
	}
}

func TestSubmitPriorityKnob(t *testing.T) {
	// No workers, so dispatch order is observable through Claim.
	d := startDaemonOpts(t, 0, nil)
	lo, resp := d.post(t, `{"version":1,"kind":"fig1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	resp2, err := http.Post(d.ts.URL+"/jobs?priority=7", "application/json",
		strings.NewReader(`{"version":1,"kind":"bench","iters":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var hi jobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&hi); err != nil {
		t.Fatal(err)
	}
	if hi.Priority != 7 {
		t.Fatalf("submitted priority = %d, want 7", hi.Priority)
	}
	// Priority is dispatch order, not hash input.
	if hi.Spec.Hash() == lo.Spec.Hash() {
		t.Fatal("distinct specs should hash apart (sanity)")
	}
	j, ok, err := d.queue.Claim()
	if err != nil || !ok || j.ID != hi.ID {
		t.Fatalf("claim = %+v ok=%v err=%v, want the priority-7 job first", j, ok, err)
	}
	// A malformed priority is a 400, not a silently-default submit.
	resp3, err := http.Post(d.ts.URL+"/jobs?priority=high", "application/json",
		strings.NewReader(`{"version":1,"kind":"fig1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: %d, want 400", resp3.StatusCode)
	}
}

// flakyQueue wraps the real queue, failing the first n Claims — the
// transient-journal-error regime that used to kill worker slots for good.
type flakyQueue struct {
	*jobs.Queue
	failures atomic.Int32
}

func (f *flakyQueue) Claim() (jobs.Job, bool, error) {
	if f.failures.Add(-1) >= 0 {
		return jobs.Job{}, false, errors.New("injected journal error")
	}
	return f.Queue.Claim()
}

func TestWorkerSurvivesClaimErrors(t *testing.T) {
	var fq *flakyQueue
	d := startDaemonOpts(t, 1, func(s *server, q *jobs.Queue) {
		fq = &flakyQueue{Queue: q}
		fq.failures.Store(3)
		s.queue = fq
	})
	st, _ := d.post(t, `{"version":1,"kind":"topo","seed":6,"nodes":60,"density":6}`)
	// Three claim errors back off ~(100+200+400)ms, then the worker claims
	// and completes the job — the slot never died.
	fin := d.waitDone(t, st.ID)
	if fin.Run == "" {
		t.Fatal("job completed with no run")
	}
	if left := fq.failures.Load(); left > 0 {
		t.Fatalf("worker completed the job without consuming the injected errors (%d left)", left)
	}
	// The pool is still at full strength, and /healthz says so.
	var h struct {
		Workers int `json:"workers"`
	}
	if resp := d.get(t, "/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
	if h.Workers != 1 {
		t.Fatalf("healthz workers = %d, want 1", h.Workers)
	}
}

func TestJobPanicFailsJobNotDaemon(t *testing.T) {
	d := startDaemonOpts(t, 1, func(s *server, q *jobs.Queue) {
		inner := s.run
		s.run = func(ctx context.Context, sp jobs.Spec, p *metrics.Progress) (*jobs.Result, error) {
			if sp.Kind == jobs.KindBench {
				panic("synthetic experiment bug")
			}
			return inner(ctx, sp, p)
		}
	})
	st, _ := d.post(t, `{"version":1,"kind":"bench","iters":1}`)
	deadline := time.Now().Add(time.Minute)
	var fin jobStatus
	for {
		d.get(t, "/jobs/"+st.ID, &fin)
		if fin.State == jobs.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("panicking job stuck in %s", fin.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(fin.Error, "job panicked: synthetic experiment bug") {
		t.Fatalf("failure reason %q does not carry the panic", fin.Error)
	}
	// The stranded progress entry is the bug this guards against.
	d.s.mu.Lock()
	stale := len(d.s.progress) + len(d.s.cancels)
	d.s.mu.Unlock()
	if stale != 0 {
		t.Fatalf("panic stranded %d progress/cancel entries", stale)
	}
	// The same worker is alive and runs the next job to completion.
	ok, _ := d.post(t, `{"version":1,"kind":"topo","seed":7,"nodes":60,"density":6}`)
	d.waitDone(t, ok.ID)
}

func TestRetryWithBackoffThenDeadLetter(t *testing.T) {
	var attempts atomic.Int32
	d := startDaemonOpts(t, 1, func(s *server, q *jobs.Queue) {
		q.MaxRetries = 2
		q.RetryBase = 20 * time.Millisecond
		s.run = func(ctx context.Context, sp jobs.Spec, p *metrics.Progress) (*jobs.Result, error) {
			attempts.Add(1)
			return nil, jobs.Retryable(fmt.Errorf("transient store outage"))
		}
	})
	st, _ := d.post(t, `{"version":1,"kind":"fig1"}`)
	deadline := time.Now().Add(time.Minute)
	var fin jobStatus
	for {
		d.get(t, "/jobs/"+st.ID, &fin)
		if fin.State == jobs.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after %d attempts", fin.State, attempts.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("run attempts = %d, want 3 (1 + 2 retries)", got)
	}
	if fin.Attempts != 3 || fin.Error != "transient store outage" {
		t.Fatalf("dead-lettered job = %+v, want attempts 3 with the last reason", fin.Job)
	}
}

func TestArtifactContentTypes(t *testing.T) {
	cases := map[string]string{
		"fig2l_gains.csv": "text/csv; charset=utf-8",
		"report.json":     "application/json",
		"trace.jsonl":     "application/x-ndjson", // not the unregistered application/jsonl
		"plot.svg":        "image/svg+xml",
		"blob.bin":        "application/octet-stream",
	}
	for name, want := range cases {
		if got := artifactContentType(name); got != want {
			t.Errorf("artifactContentType(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	var attempts atomic.Int32
	d := startDaemonOpts(t, 1, func(s *server, q *jobs.Queue) {
		q.MaxRetries = 2
		q.RetryBase = 20 * time.Millisecond
		inner := s.run
		s.run = func(ctx context.Context, sp jobs.Spec, p *metrics.Progress) (*jobs.Result, error) {
			if attempts.Add(1) == 1 {
				return nil, jobs.Retryable(fmt.Errorf("first attempt blip"))
			}
			return inner(ctx, sp, p)
		}
	})
	st, _ := d.post(t, `{"version":1,"kind":"topo","seed":8,"nodes":60,"density":6}`)
	fin := d.waitDone(t, st.ID)
	if fin.Attempts != 2 || fin.Run == "" || fin.Error != "" {
		t.Fatalf("recovered job = %+v, want done at attempt 2 with a run and no error", fin.Job)
	}
}
