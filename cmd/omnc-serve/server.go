package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"omnc/internal/buildinfo"
	"omnc/internal/jobs"
	"omnc/internal/metrics"
)

// server wires the job queue, the results store and the worker pool behind
// the HTTP surface. All handler state is the queue's and store's own
// (both are crash-safe on disk); the server only adds the live bits that
// must not survive a restart — progress counters and SSE wakeups.
type server struct {
	queue *jobs.Queue
	store *jobs.Store

	mu       sync.Mutex
	progress map[string]*metrics.Progress
	// change is closed and replaced on every job state transition so SSE
	// streams can push promptly instead of only on their poll tick.
	change chan struct{}
}

func newServer(q *jobs.Queue, st *jobs.Store) *server {
	return &server{
		queue:    q,
		store:    st,
		progress: make(map[string]*metrics.Progress),
		change:   make(chan struct{}),
	}
}

// handler builds the route table. Method-qualified patterns give wrong-method
// requests a 405 for free.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// jobStatus is one job as the API reports it: the queue's durable record
// plus, while the job runs, a live progress snapshot.
type jobStatus struct {
	jobs.Job
	Progress *metrics.Snapshot `json:"progress,omitempty"`
}

func (s *server) status(j jobs.Job) jobStatus {
	st := jobStatus{Job: j}
	if j.State == jobs.JobRunning {
		s.mu.Lock()
		p := s.progress[j.ID]
		s.mu.Unlock()
		if p != nil {
			snap := p.Snapshot()
			st.Progress = &snap
		}
	}
	return st
}

// maxSpecBytes bounds a POST /jobs body; a Spec is a small flat document.
const maxSpecBytes = 1 << 20

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := jobs.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.queue.Submit(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.broadcast()
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	list := s.queue.List()
	out := make([]jobStatus, len(list))
	for i, j := range list {
		out[i] = s.status(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleJobEvents streams job status as server-sent events until the job
// reaches a terminal state or the client goes away. Every event carries the
// same document GET /jobs/{id} serves.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		wake := s.changed()
		j, ok := s.queue.Get(id)
		if !ok {
			return
		}
		buf, err := json.Marshal(s.status(j))
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: status\ndata: %s\n\n", buf)
		fl.Flush()
		if j.State == jobs.JobDone || j.State == jobs.JobFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-time.After(time.Second):
			// Poll tick so running jobs stream progress between transitions.
		}
	}
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if runs == nil {
		runs = []jobs.StoredRun{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, run)
}

func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	buf, err := s.store.ReadArtifact(r.PathValue("id"), r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", artifactContentType(r.PathValue("name")))
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".csv"):
		return "text/csv; charset=utf-8"
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".jsonl"):
		return "application/jsonl"
	case strings.HasSuffix(name, ".svg"):
		return "image/svg+xml"
	}
	return "application/octet-stream"
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := map[jobs.JobState]int{}
	for _, j := range s.queue.List() {
		counts[j.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"build":  buildinfo.Collect(),
		"cpus":   runtime.NumCPU(),
		"jobs":   counts,
	})
}

// worker is one slot of the bounded scheduler: claim, run, land, repeat.
// claimCtx stopping ends the claiming loop (graceful shutdown); runCtx
// stopping cancels in-flight experiments, whose jobs are then requeued
// rather than failed.
func (s *server) worker(claimCtx, runCtx context.Context) {
	for {
		// Take the wake channel before claiming so a submit that lands
		// between Claim and the select is never missed.
		wake := s.queue.Wait()
		j, ok, err := s.queue.Claim()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omnc-serve: claim: %v\n", err)
			return
		}
		if !ok {
			select {
			case <-claimCtx.Done():
				return
			case <-wake:
			}
			continue
		}
		s.broadcast()
		s.runJob(runCtx, j)
		select {
		case <-claimCtx.Done():
			return
		default:
		}
	}
}

func (s *server) runJob(runCtx context.Context, j jobs.Job) {
	p := metrics.NewProgress(j.Spec.Units())
	s.mu.Lock()
	s.progress[j.ID] = p
	s.mu.Unlock()
	res, err := jobs.RunWithProgress(runCtx, j.Spec, p)
	s.mu.Lock()
	delete(s.progress, j.ID)
	s.mu.Unlock()

	switch {
	case err != nil && runCtx.Err() != nil:
		// Shutdown took the job down mid-run: hand it back to the queue so
		// the next daemon re-runs it bit-identically from the Spec.
		if qerr := s.queue.Requeue(j.ID); qerr != nil {
			fmt.Fprintf(os.Stderr, "omnc-serve: requeue %s: %v\n", j.ID, qerr)
		}
	case err != nil:
		if qerr := s.queue.Fail(j.ID, err); qerr != nil {
			fmt.Fprintf(os.Stderr, "omnc-serve: fail %s: %v\n", j.ID, qerr)
		}
	default:
		runID, lerr := s.store.Land(res)
		if lerr != nil {
			if qerr := s.queue.Fail(j.ID, lerr); qerr != nil {
				fmt.Fprintf(os.Stderr, "omnc-serve: fail %s: %v\n", j.ID, qerr)
			}
		} else if qerr := s.queue.Done(j.ID, runID); qerr != nil {
			fmt.Fprintf(os.Stderr, "omnc-serve: done %s: %v\n", j.ID, qerr)
		}
	}
	s.broadcast()
}

// changed returns a channel closed at the next state transition.
func (s *server) changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// broadcast releases every changed() waiter.
func (s *server) broadcast() {
	s.mu.Lock()
	close(s.change)
	s.change = make(chan struct{})
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
