package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"omnc/internal/buildinfo"
	"omnc/internal/jobs"
	"omnc/internal/metrics"
)

// jobQueue is the slice of jobs.Queue the server drives. An interface so
// tests can interpose fault injection (flaky Claim) without touching the
// journal machinery.
type jobQueue interface {
	SubmitPriority(s jobs.Spec, priority int) (jobs.Job, error)
	Claim() (jobs.Job, bool, error)
	Done(id, runID string) error
	Fail(id string, cause error) error
	Requeue(id string) error
	Cancel(id string) (jobs.Job, error)
	Get(id string) (jobs.Job, bool)
	List() []jobs.Job
	Wait() <-chan struct{}
}

// server wires the job queue, the results store and the worker pool behind
// the HTTP surface. All handler state is the queue's and store's own
// (both are crash-safe on disk); the server only adds the live bits that
// must not survive a restart — progress counters, per-job cancel funcs and
// SSE wakeups.
type server struct {
	queue jobQueue
	store *jobs.Store
	// run executes one Spec; a seam for tests to inject failures and
	// panics. Defaults to jobs.RunWithProgress.
	run func(ctx context.Context, s jobs.Spec, p *metrics.Progress) (*jobs.Result, error)

	// workers counts live worker goroutines, exposed in /healthz so a
	// shrinking pool is observable instead of a silent capacity loss.
	workers atomic.Int64

	mu       sync.Mutex
	progress map[string]*metrics.Progress
	// cancels holds one context cancel per running job, the mechanism by
	// which DELETE /jobs/{id} reclaims a busy worker. The queue's journal,
	// not this map, is the durable record of the cancellation.
	cancels map[string]context.CancelFunc
	// change is closed and replaced on every job state transition so SSE
	// streams can push promptly instead of only on their poll tick.
	change chan struct{}
}

func newServer(q jobQueue, st *jobs.Store) *server {
	return &server{
		queue:    q,
		store:    st,
		run:      jobs.RunWithProgress,
		progress: make(map[string]*metrics.Progress),
		cancels:  make(map[string]context.CancelFunc),
		change:   make(chan struct{}),
	}
}

// handler builds the route table. Method-qualified patterns give wrong-method
// requests a 405 for free.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// jobStatus is one job as the API reports it: the queue's durable record
// plus, while the job runs, a live progress snapshot.
type jobStatus struct {
	jobs.Job
	Progress *metrics.Snapshot `json:"progress,omitempty"`
}

func (s *server) status(j jobs.Job) jobStatus {
	st := jobStatus{Job: j}
	if j.State == jobs.JobRunning {
		s.mu.Lock()
		p := s.progress[j.ID]
		s.mu.Unlock()
		if p != nil {
			snap := p.Snapshot()
			st.Progress = &snap
		}
	}
	return st
}

// maxSpecBytes bounds a POST /jobs body; a Spec is a small flat document.
const maxSpecBytes = 1 << 20

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := jobs.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Priority is a submit-time query knob, not a Spec field: it orders
	// dispatch without entering the content address, so urgent and casual
	// submissions of one experiment share one run directory.
	priority := 0
	if v := r.URL.Query().Get("priority"); v != "" {
		priority, err = strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("priority %q is not an integer", v))
			return
		}
	}
	j, err := s.queue.SubmitPriority(spec, priority)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.broadcast()
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	list := s.queue.List()
	out := make([]jobStatus, len(list))
	for i, j := range list {
		out[i] = s.status(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleCancel cancels a job. Pending jobs transition straight to canceled
// in the journal; for running jobs the journal transition lands first (so
// the cancellation survives a crash) and the per-job cancel func then
// reclaims the worker, which observes the canceled state and leaves the
// terminal record alone. Canceling twice is idempotent; canceling a done or
// failed job is a 409.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	j, err := s.queue.Cancel(id)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrJobTerminal) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.broadcast()
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleJobEvents streams job status as server-sent events until the job
// reaches a terminal state or the client goes away. Every event carries the
// same document GET /jobs/{id} serves.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		wake := s.changed()
		j, ok := s.queue.Get(id)
		if !ok {
			return
		}
		buf, err := json.Marshal(s.status(j))
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", buf); err != nil {
			return // client gone mid-write
		}
		fl.Flush()
		if j.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-time.After(time.Second):
			// Poll tick so running jobs stream progress between transitions.
		}
	}
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if runs == nil {
		runs = []jobs.StoredRun{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, run)
}

func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	buf, err := s.store.ReadArtifact(r.PathValue("id"), r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", artifactContentType(r.PathValue("name")))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf); err != nil {
		// Headers are out; nothing to send the client. Drop the conn.
		return
	}
}

func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".csv"):
		return "text/csv; charset=utf-8"
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".jsonl"):
		// Newline-delimited JSON's registered-in-practice type; the bare
		// "application/jsonl" is not a real media type.
		return "application/x-ndjson"
	case strings.HasSuffix(name, ".svg"):
		return "image/svg+xml"
	}
	return "application/octet-stream"
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := map[jobs.JobState]int{}
	for _, j := range s.queue.List() {
		counts[j.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"build":   buildinfo.Collect(),
		"cpus":    runtime.NumCPU(),
		"jobs":    counts,
		"workers": s.workers.Load(),
	})
}

// Claim-retry backoff bounds: a failing journal is retried, not fatal.
const (
	claimBackoffMin = 100 * time.Millisecond
	claimBackoffMax = 5 * time.Second
)

// worker is one slot of the bounded scheduler: claim, run, land, repeat.
// claimCtx stopping ends the claiming loop (graceful shutdown); runCtx
// stopping cancels in-flight experiments, whose jobs are then requeued
// rather than failed. A Claim error is logged and retried with backoff —
// returning here would silently shrink the pool to zero under transient
// journal I/O errors, exactly the capacity loss the /healthz worker count
// exists to rule out.
func (s *server) worker(claimCtx, runCtx context.Context) {
	s.workers.Add(1)
	defer s.workers.Add(-1)
	backoff := claimBackoffMin
	for {
		// Take the wake channel before claiming so a submit that lands
		// between Claim and the select is never missed.
		wake := s.queue.Wait()
		j, ok, err := s.queue.Claim()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omnc-serve: claim: %v (retrying in %v)\n", err, backoff)
			select {
			case <-claimCtx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > claimBackoffMax {
				backoff = claimBackoffMax
			}
			continue
		}
		backoff = claimBackoffMin
		if !ok {
			select {
			case <-claimCtx.Done():
				return
			case <-wake:
				// Submits, requeues, reprioritizations and expired retry
				// backoffs all close the wake channel; no poll needed.
			}
			continue
		}
		s.broadcast()
		s.runJob(runCtx, j)
		select {
		case <-claimCtx.Done():
			return
		default:
		}
	}
}

func (s *server) runJob(runCtx context.Context, j jobs.Job) {
	// jobCtx layers per-job cancellation (DELETE /jobs/{id}) over the
	// pool-wide drain context.
	jobCtx, cancel := context.WithCancel(runCtx)
	defer cancel()
	p := metrics.NewProgress(j.Spec.Units())
	s.mu.Lock()
	s.progress[j.ID] = p
	s.cancels[j.ID] = cancel
	s.mu.Unlock()
	// The progress entry and cancel func must go away on every exit path,
	// including a panicking experiment — a stranded entry would leak and
	// keep serving stale progress for a dead job.
	defer func() {
		s.mu.Lock()
		delete(s.progress, j.ID)
		delete(s.cancels, j.ID)
		s.mu.Unlock()
		s.broadcast()
	}()

	res, err := s.runRecovered(jobCtx, j.Spec, p)

	switch {
	case err != nil && jobCtx.Err() != nil:
		if runCtx.Err() != nil {
			// Shutdown took the job down mid-run: hand it back to the queue
			// so the next daemon re-runs it bit-identically from the Spec.
			// A job canceled during the drain stays canceled.
			if qerr := s.queue.Requeue(j.ID); qerr != nil && !errors.Is(qerr, jobs.ErrJobCanceled) {
				fmt.Fprintf(os.Stderr, "omnc-serve: requeue %s: %v\n", j.ID, qerr)
			}
			break
		}
		// DELETE canceled just this job; the handler already journaled the
		// terminal canceled state — nothing to transition.
	case err != nil:
		if qerr := s.queue.Fail(j.ID, err); qerr != nil && !errors.Is(qerr, jobs.ErrJobCanceled) {
			fmt.Fprintf(os.Stderr, "omnc-serve: fail %s: %v\n", j.ID, qerr)
		}
	default:
		runID, lerr := s.store.Land(res)
		if lerr != nil {
			// Landing is disk I/O on a finished result: transient by
			// nature, so let the queue retry it with backoff.
			if qerr := s.queue.Fail(j.ID, jobs.Retryable(lerr)); qerr != nil && !errors.Is(qerr, jobs.ErrJobCanceled) {
				fmt.Fprintf(os.Stderr, "omnc-serve: fail %s: %v\n", j.ID, qerr)
			}
		} else if qerr := s.queue.Done(j.ID, runID); qerr != nil && !errors.Is(qerr, jobs.ErrJobCanceled) {
			fmt.Fprintf(os.Stderr, "omnc-serve: done %s: %v\n", j.ID, qerr)
		}
	}
}

// runRecovered executes one Spec, converting a panic anywhere inside the
// experiment into an ordinary job failure — one bad job must never take
// down the daemon or its worker slot.
func (s *server) runRecovered(ctx context.Context, sp jobs.Spec, p *metrics.Progress) (res *jobs.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return s.run(ctx, sp, p)
}

// changed returns a channel closed at the next state transition.
func (s *server) changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// broadcast releases every changed() waiter.
func (s *server) broadcast() {
	s.mu.Lock()
	close(s.change)
	s.change = make(chan struct{})
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(buf, '\n')); err != nil {
		// The status line is already on the wire; a failed body write
		// means the client is gone and there is nobody to tell.
		return
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
