module omnc

go 1.22
