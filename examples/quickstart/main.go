// Quickstart: code a generation at a source, relay it through two lossy
// forwarders that re-encode, and progressively decode it at a destination —
// the elementary OMNC data path from Sec. 3.1 of the paper, on the
// two-relay diamond of Sec. 3.2.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"omnc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small generation: 8 blocks of 64 bytes.
	params := omnc.CodingParams{GenerationSize: 8, BlockSize: 64}
	message := bytes.Repeat([]byte("optimized multipath network coding! "), 15)
	message = message[:8*64]

	rng := rand.New(rand.NewSource(42))
	gen, err := omnc.NewGeneration(0, params, message)
	if err != nil {
		return err
	}

	// The diamond: source S, relays u and v (out of each other's range),
	// destination T. Links are lossy; u and v each hear only part of the
	// stream.
	const pSu, pSv, puT, pvT = 0.7, 0.6, 0.8, 0.9
	source := omnc.NewEncoder(gen, rng)
	relayU, err := omnc.NewRecoder(0, params, rng)
	if err != nil {
		return err
	}
	relayV, err := omnc.NewRecoder(0, params, rng)
	if err != nil {
		return err
	}
	sink, err := omnc.NewDecoder(0, params)
	if err != nil {
		return err
	}

	broadcasts, deliveries := 0, 0
	for !sink.Decoded() {
		// One broadcast from the source: u and v draw independent losses.
		pkt := source.Next()
		broadcasts++
		if rng.Float64() < pSu {
			if _, err := relayU.Add(pkt.Clone()); err != nil {
				return err
			}
		}
		if rng.Float64() < pSv {
			if _, err := relayV.Add(pkt.Clone()); err != nil {
				return err
			}
		}
		// Each relay re-encodes whatever it has and broadcasts toward T.
		for _, hop := range []struct {
			relay *omnc.Recoder
			p     float64
		}{{relayU, puT}, {relayV, pvT}} {
			out := hop.relay.Next()
			if out == nil {
				continue // the relay has heard nothing yet
			}
			broadcasts++
			if rng.Float64() < hop.p {
				innovative, err := sink.Add(out)
				if err != nil {
					return err
				}
				if innovative {
					deliveries++
				}
			}
		}
		// Progressive decoding: blocks resolve before the generation
		// completes.
		if blk := sink.Block(0); blk != nil && sink.Rank() < params.GenerationSize {
			fmt.Printf("rank %d/%d: block 0 already decoded: %q...\n",
				sink.Rank(), params.GenerationSize, blk[:24])
		}
	}

	if !bytes.Equal(sink.Data(), message) {
		return fmt.Errorf("decoded data differs from the original")
	}
	fmt.Printf("\ndecoded %d blocks after %d broadcasts (%d innovative packets at T)\n",
		params.GenerationSize, broadcasts, deliveries)
	fmt.Printf("message recovered: %q...\n", sink.Data()[:36])
	fmt.Println("\nNote: no retransmissions anywhere — random linear coding absorbs the losses.")
	return nil
}
