// Multi-unicast: the extension the paper's conclusion points to — several
// concurrent unicast sessions sharing the lossy channel, with OMNC's rate
// control generalized to shared congestion prices (proportional fairness).
// The example allocates rates jointly, emulates both sessions on one MAC,
// and contrasts the outcome with each session running alone.
package main

import (
	"fmt"
	"log"

	"omnc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two sessions crossing through shared middle relays.
	nw, err := omnc.NetworkFromMatrix(crossroads())
	if err != nil {
		return err
	}
	sessions := []omnc.Endpoints{
		{Src: 0, Dst: 5},
		{Src: 1, Dst: 6},
	}

	// Joint rate allocation: shared congestion prices split the middle
	// relays' neighbourhood capacity between the sessions.
	var multi []omnc.MultiSession
	for _, s := range sessions {
		sg, err := omnc.SelectForwarders(nw, s.Src, s.Dst)
		if err != nil {
			return err
		}
		multi = append(multi, omnc.MultiSession{Subgraph: sg})
	}
	opts := omnc.RateOptions{Capacity: 2e4}
	joint, err := omnc.OptimizeRatesJointly(multi, opts)
	if err != nil {
		return err
	}
	fmt.Println("joint rate allocation (shared congestion prices):")
	for i, r := range joint.PerSession {
		fmt.Printf("  session %d (%d->%d): gamma = %.0f B/s\n",
			i, sessions[i].Src, sessions[i].Dst, r.Gamma)
	}

	// Emulate both sessions simultaneously on one shared channel.
	cfg := omnc.SessionConfig{
		Coding:        omnc.CodingParams{GenerationSize: 16, BlockSize: 16},
		AirPacketSize: 16 + 1024,
		Capacity:      2e4,
		Duration:      300,
		Seed:          11,
	}
	shared, err := omnc.RunMulti(nw, sessions, omnc.OMNC(opts), cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nemulated concurrently:")
	for i, st := range shared.PerSession {
		fmt.Printf("  session %d: %.0f B/s (%d generations)\n",
			i, st.Throughput, st.GenerationsDecoded)
	}
	fmt.Printf("  aggregate: %.0f B/s, Jain fairness %.3f\n",
		shared.AggregateThroughput, shared.JainFairness)

	// Against each session running alone on an idle channel.
	fmt.Println("\neach session alone on an idle channel:")
	for i, s := range sessions {
		solo, err := omnc.RunMulti(nw, []omnc.Endpoints{s}, omnc.OMNC(opts), cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  session %d: %.0f B/s\n", i, solo.PerSession[0].Throughput)
	}
	fmt.Println("\nSharing the middle relays costs each session throughput; the joint")
	fmt.Println("controller's proportional fairness keeps both sessions alive.")
	return nil
}

// crossroads is the shared-relay topology: S1(0), S2(1), relays 2 and 3,
// destinations T1(5) and T2(6); node 4 unused.
func crossroads() [][]float64 {
	p := make([][]float64, 7)
	for i := range p {
		p[i] = make([]float64, 7)
	}
	set := func(a, b int, q float64) {
		p[a][b] = q
		p[b][a] = q
	}
	set(0, 2, 0.8)
	set(0, 3, 0.6)
	set(1, 2, 0.7)
	set(1, 3, 0.8)
	set(2, 5, 0.7)
	set(3, 5, 0.6)
	set(2, 6, 0.6)
	set(3, 6, 0.8)
	set(2, 3, 0.5)
	return p
}
