// Mesh gateway: the workload the paper's introduction motivates — a node in
// an unplanned wireless mesh pushing a long-lived unicast stream to the
// network gateway over lossy links. The example compares OMNC against
// best-path ETX routing and MORE on the same session and prints the
// throughput-gain numbers of Fig. 2.
package main

import (
	"fmt"
	"log"

	"omnc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 150-node unplanned mesh at the paper's density; the gateway is the
	// node closest to the deployment centre.
	nw, err := omnc.GenerateNetwork(150, 6, 2024)
	if err != nil {
		return err
	}
	gateway := centralNode(nw)
	fmt.Printf("mesh: %d nodes, mean link quality %.2f, gateway = node %d\n",
		nw.Size(), nw.MeanLinkQuality(), gateway)

	// Pick a client several hops out.
	client := farNode(nw, gateway)
	sg, err := omnc.SelectForwarders(nw, client, gateway)
	if err != nil {
		return err
	}
	fmt.Printf("session: client %d -> gateway %d (%d selected forwarders)\n\n",
		client, gateway, sg.Size())

	cfg := omnc.SessionConfig{
		Coding:        omnc.CodingParams{GenerationSize: 40, BlockSize: 8},
		AirPacketSize: 40 + 1024, // full-fidelity air frames
		Capacity:      2e4,
		Duration:      300,
		CBRRate:       1e4,
		Seed:          7,
	}

	// One entry point for every protocol: Run with a Protocol value.
	stats := make([]*omnc.SessionStats, 0, 3)
	for _, proto := range []omnc.Protocol{omnc.ETX(), omnc.MORE(), omnc.OMNC(omnc.RateOptions{})} {
		st, err := omnc.Run(nw, client, gateway, proto, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", proto.Name(), err)
		}
		stats = append(stats, st)
	}
	etx, best := stats[0], stats[2]

	fmt.Printf("%-12s %12s %10s %12s %12s\n", "protocol", "throughput", "gain", "node util", "path util")
	for _, st := range stats {
		gain := 1.0
		if etx.Throughput > 0 {
			gain = st.Throughput / etx.Throughput
		}
		fmt.Printf("%-12s %9.0f B/s %9.2fx %12.2f %12.2f\n",
			st.Policy, st.Throughput, gain, st.NodeUtility, st.PathUtility)
	}
	fmt.Printf("\nOMNC's rate controller converged in %d iterations (optimized gamma %.0f B/s).\n",
		best.RateIterations, best.Gamma)
	return nil
}

// centralNode returns the node nearest the deployment centroid.
func centralNode(nw *omnc.Network) int {
	var cx, cy float64
	for i := 0; i < nw.Size(); i++ {
		p := nw.Position(i)
		cx += p.X
		cy += p.Y
	}
	centre := omnc.Point{X: cx / float64(nw.Size()), Y: cy / float64(nw.Size())}
	best, bestDist := 0, centre.Distance(nw.Position(0))
	for i := 1; i < nw.Size(); i++ {
		if d := centre.Distance(nw.Position(i)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// farNode returns a node with a usable multi-hop session to the gateway.
func farNode(nw *omnc.Network, gateway int) int {
	best, bestDist := -1, 0.0
	for i := 0; i < nw.Size(); i++ {
		if i == gateway {
			continue
		}
		if _, err := omnc.SelectForwarders(nw, i, gateway); err != nil {
			continue
		}
		if d := nw.Position(i).Distance(nw.Position(gateway)); d > bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
