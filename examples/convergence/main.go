// Convergence: watch the distributed rate-control algorithm of Table 1
// allocate broadcast rates on a small tagged topology, and compare the
// result against the centralized sUnicast LP optimum — a Fig. 1-style demo
// through the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"omnc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The two-relay diamond of Sec. 3.2 with tagged link probabilities.
	nw, err := omnc.NetworkFromMatrix([][]float64{
		// S     u    v    T
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		return err
	}
	sg, err := omnc.SelectForwarders(nw, 0, 3)
	if err != nil {
		return err
	}

	const capacity = 1e5 // the paper's Fig. 1 setting
	res, err := omnc.OptimizeRates(sg, omnc.RateOptions{
		Capacity:    capacity,
		RecordTrace: true,
	})
	if err != nil {
		return err
	}
	lp, err := omnc.SolveOptimalRates(sg, capacity)
	if err != nil {
		return err
	}

	fmt.Printf("distributed rate control on the two-relay diamond (C = %.0e B/s)\n\n", capacity)
	fmt.Printf("%-6s", "iter")
	for local, id := range sg.Nodes {
		if local == sg.Dst {
			continue
		}
		fmt.Printf("  b[node %d]", id)
	}
	fmt.Printf("  gamma\n")
	for t := 0; t < len(res.Trace); t += 10 {
		snap := res.Trace[t]
		fmt.Printf("%-6d", snap.Iteration)
		for local := range sg.Nodes {
			if local == sg.Dst {
				continue
			}
			fmt.Printf("  %-9.0f", snap.B[local])
		}
		fmt.Printf("  %.0f\n", snap.Gamma)
	}

	fmt.Printf("\n%s\n", strings.Repeat("-", 56))
	fmt.Printf("converged:              %v (after %d iterations)\n", res.Converged, res.Iterations)
	fmt.Printf("distributed gamma:      %.0f B/s\n", res.Gamma)
	fmt.Printf("centralized LP optimum: %.0f B/s (%d simplex pivots)\n", lp.Gamma, lp.Iterations)
	fmt.Printf("agreement:              %.1f%%\n", 100*res.Gamma/lp.Gamma)
	return nil
}
