// Sensor network sweep: OMNC on randomly deployed sensor fields of varying
// loss severity — the "randomly deployed sensor networks" application the
// paper names (Sec. 1). The sweep raises transmit power step by step and
// shows the paper's Fig. 2 contrast: network coding's advantage is largest
// on lossy links and fades as links approach perfect quality.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"omnc"
	"omnc/internal/graph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := omnc.GenerateNetwork(150, 6, 99)
	if err != nil {
		return err
	}
	src, dst, err := pickSession(base, 4, 9)
	if err != nil {
		return err
	}
	fmt.Printf("sensor field: %d nodes, session %d -> %d\n\n", base.Size(), src, dst)
	fmt.Printf("%-14s %-12s %-12s %-10s\n", "mean quality", "omnc (B/s)", "etx (B/s)", "gain")

	cfg := omnc.SessionConfig{
		Coding:        omnc.CodingParams{GenerationSize: 40, BlockSize: 8},
		AirPacketSize: 40 + 1024,
		Capacity:      2e4,
		Duration:      250,
		CBRRate:       1e4,
		Seed:          3,
	}

	for _, target := range []float64{0.45, 0.58, 0.70, 0.82, 0.91} {
		phy, err := omnc.DefaultPHY().CalibrateGain(target)
		if err != nil {
			return err
		}
		nw, err := base.WithPHY(phy)
		if err != nil {
			return err
		}
		etx, err := omnc.Run(nw, src, dst, omnc.ETX(), cfg)
		if err != nil {
			return err
		}
		coded, err := omnc.Run(nw, src, dst, omnc.OMNC(omnc.RateOptions{}), cfg)
		if err != nil {
			return err
		}
		gain := 0.0
		if etx.Throughput > 0 {
			gain = coded.Throughput / etx.Throughput
		}
		fmt.Printf("%-14.2f %-12.0f %-12.0f %.2fx\n",
			nw.MeanLinkQuality(), coded.Throughput, etx.Throughput, gain)
	}
	fmt.Println("\nLossier fields favour coding; near-perfect links favour plain best-path routing.")
	return nil
}

// pickSession samples endpoints within the hop band on the lossy field.
func pickSession(nw *omnc.Network, minHops, maxHops int) (int, int, error) {
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	rng := rand.New(rand.NewSource(5))
	for attempt := 0; attempt < 5000; attempt++ {
		src, dst := rng.Intn(nw.Size()), rng.Intn(nw.Size())
		if src == dst {
			continue
		}
		h := graph.HopCounts(adj, src)[dst]
		if h < minHops || h > maxHops {
			continue
		}
		if _, err := omnc.SelectForwarders(nw, src, dst); err != nil {
			continue
		}
		return src, dst, nil
	}
	return 0, 0, fmt.Errorf("no suitable session found")
}
