// File transfer: stream an arbitrary payload across generations — split,
// code, relay through a lossy diamond, progressively decode, reassemble,
// and verify — with a session trace summarizing what happened on the air.
// This is the end-to-end "long lived unicast session" workload of Sec. 3.1
// driven entirely through the coding layer.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"omnc"
	"omnc/internal/coding"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10 KiB "file".
	payload := make([]byte, 10*1024)
	rng := rand.New(rand.NewSource(2024))
	rng.Read(payload)

	params := omnc.CodingParams{GenerationSize: 16, BlockSize: 256}
	gens, err := coding.StreamSplit(payload, params, 0)
	if err != nil {
		return err
	}
	fmt.Printf("file: %d bytes -> %d generations of %d x %d B\n",
		len(payload), len(gens), params.GenerationSize, params.BlockSize)

	// The lossy diamond: S -> {u, v} -> T.
	const pSu, pSv, puT, pvT = 0.6, 0.5, 0.7, 0.8
	var (
		decoded    [][]byte
		broadcasts int
		wireBytes  int
	)
	for _, gen := range gens {
		enc := omnc.NewEncoder(gen, rng)
		relayU, err := omnc.NewRecoder(gen.ID, params, rng)
		if err != nil {
			return err
		}
		relayV, err := omnc.NewRecoder(gen.ID, params, rng)
		if err != nil {
			return err
		}
		sink, err := omnc.NewDecoder(gen.ID, params)
		if err != nil {
			return err
		}
		for !sink.Decoded() {
			// Source broadcast, serialized over the wire format.
			buf, err := coding.MarshalData(1, enc.Next())
			if err != nil {
				return err
			}
			broadcasts++
			wireBytes += len(buf)
			msg, err := coding.Unmarshal(buf)
			if err != nil {
				return err
			}
			if rng.Float64() < pSu {
				relayU.Add(msg.Packet.Clone())
			}
			if rng.Float64() < pSv {
				relayV.Add(msg.Packet.Clone())
			}
			// Relay re-broadcasts.
			for _, hop := range []struct {
				relay *omnc.Recoder
				p     float64
			}{{relayU, puT}, {relayV, pvT}} {
				pkt := hop.relay.Next()
				if pkt == nil {
					continue
				}
				broadcasts++
				wireBytes += coding.WireSize(params)
				if rng.Float64() < hop.p {
					sink.Add(pkt)
				}
			}
		}
		decoded = append(decoded, sink.Data())
	}

	got, err := coding.StreamReassemble(decoded, params)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("reassembled file differs from the original")
	}
	overhead := float64(wireBytes)/float64(len(payload)) - 1
	fmt.Printf("transferred and verified: %d broadcasts, %d wire bytes (%.0f%% overhead over the raw file)\n",
		broadcasts, wireBytes, 100*overhead)
	fmt.Println("every loss absorbed by re-encoding — no retransmission logic anywhere")
	return nil
}
