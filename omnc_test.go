package omnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// lossyDiamond is the canonical two-relay scenario of the paper's Sec. 3.2.
func lossyDiamond(t *testing.T) *Network {
	t.Helper()
	nw, err := NetworkFromMatrix([][]float64{
		{0, 0.5, 0.5, 0},
		{0.5, 0, 0, 0.5},
		{0.5, 0, 0, 0.5},
		{0, 0.5, 0.5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func fastSession(seed int64) SessionConfig {
	return SessionConfig{
		Coding:        CodingParams{GenerationSize: 8, BlockSize: 16},
		AirPacketSize: 8 + 1024,
		Capacity:      2e4,
		Duration:      120,
		Seed:          seed,
	}
}

func TestGenerateNetwork(t *testing.T) {
	nw, err := GenerateNetwork(100, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 100 {
		t.Fatalf("size = %d", nw.Size())
	}
	if _, err := GenerateNetwork(1, 6, 1); err == nil {
		t.Fatal("single node must fail")
	}
}

func TestNetworkFromPositions(t *testing.T) {
	nw, err := NetworkFromPositions([]Point{{X: 0}, {X: 50}}, PHY{})
	if err != nil {
		t.Fatal(err)
	}
	if !nw.InRange(0, 1) {
		t.Fatal("50 m apart within 100 m range must link")
	}
}

func TestDefaultCodingParams(t *testing.T) {
	p := DefaultCodingParams()
	if p.GenerationSize != 40 || p.BlockSize != 1024 {
		t.Fatalf("params = %+v", p)
	}
}

func TestSelectAndOptimize(t *testing.T) {
	nw := lossyDiamond(t)
	sg, err := SelectForwarders(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeRates(sg, RateOptions{Capacity: 2e4})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := SolveOptimalRates(sg, 2e4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gamma <= 0 || lp.Gamma <= 0 {
		t.Fatalf("gamma: distributed %v, lp %v", res.Gamma, lp.Gamma)
	}
	if ratio := res.Gamma / lp.Gamma; ratio < 0.7 || ratio > 1.2 {
		t.Fatalf("distributed/LP = %v", ratio)
	}
}

func TestCodingFacadeRoundTrip(t *testing.T) {
	params := CodingParams{GenerationSize: 4, BlockSize: 32}
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 4*32)
	rng.Read(data)
	gen, err := NewGeneration(0, params, data)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	relay, err := NewRecoder(0, params, rng)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(0, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := relay.Add(enc.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20 && !dec.Decoded(); i++ {
		if _, err := dec.Add(relay.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Decoded() || !bytes.Equal(dec.Data(), data) {
		t.Fatal("facade round trip failed")
	}
}

func TestRunAllProtocols(t *testing.T) {
	nw := lossyDiamond(t)
	runs := []struct {
		name string
		run  func() (*SessionStats, error)
	}{
		{"omnc", func() (*SessionStats, error) { return Run(nw, 0, 3, OMNC(RateOptions{}), fastSession(1)) }},
		{"omnc-opts", func() (*SessionStats, error) {
			return Run(nw, 0, 3, OMNC(RateOptions{MaxIterations: 500}), fastSession(2))
		}},
		{"more", func() (*SessionStats, error) { return Run(nw, 0, 3, MORE(), fastSession(3)) }},
		{"oldmore", func() (*SessionStats, error) { return Run(nw, 0, 3, OldMORE(), fastSession(4)) }},
		{"etx", func() (*SessionStats, error) { return Run(nw, 0, 3, ETX(), fastSession(5)) }},
	}
	for _, tt := range runs {
		t.Run(tt.name, func(t *testing.T) {
			st, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			if st.Throughput <= 0 {
				t.Fatalf("%s delivered nothing", tt.name)
			}
		})
	}
}

func TestRunOMNCWithDriftFacade(t *testing.T) {
	nw := lossyDiamond(t)
	cfg := fastSession(21)
	cfg.Duration = 240
	ds, err := RunOMNCWithDrift(nw, 0, 3, cfg, DriftConfig{Epochs: 2, Jitter: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Throughput <= 0 || len(ds.PerEpoch) != 2 {
		t.Fatalf("drift stats = %+v", ds)
	}
}

func TestMultiUnicastFacade(t *testing.T) {
	nw := lossyDiamond(t)
	sg, err := SelectForwarders(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := OptimizeRatesJointly([]MultiSession{{Subgraph: sg}}, RateOptions{Capacity: 2e4})
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.PerSession) != 1 || joint.PerSession[0].Gamma <= 0 {
		t.Fatalf("joint = %+v", joint)
	}
	cs, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 3}}, OMNC(RateOptions{}), fastSession(22))
	if err != nil {
		t.Fatal(err)
	}
	if cs.AggregateThroughput <= 0 {
		t.Fatal("multi facade delivered nothing")
	}
}

func TestRunMultiFacade(t *testing.T) {
	nw := lossyDiamond(t)
	for _, proto := range []Protocol{OMNC(RateOptions{}), MORE(), OldMORE(), ETX()} {
		cs, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 3}}, proto, fastSession(23))
		if err != nil {
			t.Fatalf("%s: %v", proto.Name(), err)
		}
		if cs.AggregateThroughput <= 0 {
			t.Fatalf("%s delivered nothing", proto.Name())
		}
		if cs.JainFairness != 1 {
			t.Fatalf("%s: Jain index of one session = %v", proto.Name(), cs.JainFairness)
		}
	}
	if _, err := RunMulti(nw, []Endpoints{{Src: 2, Dst: 2}}, OMNC(RateOptions{}), fastSession(23)); !errors.Is(err, ErrInvalidSession) {
		t.Fatalf("degenerate session: err = %v, want ErrInvalidSession", err)
	}
}

func TestTraceFacade(t *testing.T) {
	nw := lossyDiamond(t)
	buf := NewTraceBuffer()
	cfg := fastSession(31)
	cfg.Duration = 60
	cfg.Trace = buf
	if _, err := Run(nw, 0, 3, OMNC(RateOptions{}), cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Count(TraceTx) == 0 || buf.Count(TraceDecode) == 0 {
		t.Fatal("trace facade recorded nothing useful")
	}
}
