package omnc_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"omnc"
)

// The differential determinism suite proves the parallel engine's central
// contract: same seed -> bit-identical SessionStats, trace byte streams and
// Reports at ANY engine worker count, for all four protocols, single- and
// multi-session, with and without a fault plan. The serial engine
// (EngineWorkers 0) is the reference; worker counts 1, 2 and 8 exercise the
// parallel engine's round machinery single-threaded, lightly contended and
// oversubscribed. Everything here must also pass under -race (CI runs it in
// a GOMAXPROCS matrix), which is what upgrades "the outputs matched" into
// "and no unsynchronized access produced them".

// detWorkerCounts: 0 selects the serial engine; the rest the parallel one.
var detWorkerCounts = []int{0, 1, 2, 8}

// detRun is everything observable from one emulation, in comparable form.
type detRun struct {
	stats      *omnc.SessionStats
	multi      *omnc.MultiStats
	errText    string
	traceJSONL []byte
	reportJSON []byte
}

func traceBytes(t *testing.T, buf *omnc.TraceBuffer) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := buf.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func reportJSON(t *testing.T, st *omnc.SessionStats) []byte {
	t.Helper()
	if st == nil || st.Report == nil {
		return nil
	}
	buf, err := json.Marshal(st.Report)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// compareRuns demands the two runs are observably identical.
func compareRuns(t *testing.T, want, got detRun, label string) {
	t.Helper()
	if want.errText != got.errText {
		t.Fatalf("%s: error diverged: serial %q vs %q", label, want.errText, got.errText)
	}
	if want.stats != nil || got.stats != nil {
		if !reflect.DeepEqual(want.stats, got.stats) {
			t.Errorf("%s: SessionStats diverged from serial engine:\nserial: %+v\n   got: %+v",
				label, want.stats, got.stats)
		}
	}
	if want.multi != nil || got.multi != nil {
		if !reflect.DeepEqual(want.multi, got.multi) {
			t.Errorf("%s: MultiStats diverged from serial engine:\nserial: %+v\n   got: %+v",
				label, want.multi, got.multi)
		}
	}
	if !bytes.Equal(want.traceJSONL, got.traceJSONL) {
		t.Errorf("%s: trace byte stream diverged from serial engine (%d vs %d bytes)",
			label, len(want.traceJSONL), len(got.traceJSONL))
	}
	if !bytes.Equal(want.reportJSON, got.reportJSON) {
		t.Errorf("%s: Report diverged from serial engine (%d vs %d bytes)",
			label, len(want.reportJSON), len(got.reportJSON))
	}
}

func detFaultPlan(t *testing.T, nw *omnc.Network, protect map[int]bool, seed int64) *omnc.FaultPlan {
	t.Helper()
	var candidates []int
	for n := 0; n < nw.Size(); n++ {
		if !protect[n] {
			candidates = append(candidates, n)
		}
	}
	plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
		Nodes:        candidates,
		Horizon:      8,
		CrashRate:    0.3,
		MeanDowntime: 2,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestEngineDeterminismSingleSession(t *testing.T) {
	nw, err := omnc.GenerateNetwork(40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	eps := findMultiSessions(t, nw, 1)[0]
	plan := detFaultPlan(t, nw, map[int]bool{eps.Src: true, eps.Dst: true}, 7101)

	runners := map[string]omnc.Protocol{
		"omnc":    omnc.OMNC(omnc.RateOptions{}),
		"more":    omnc.MORE(),
		"oldmore": omnc.OldMORE(),
		"etx":     omnc.ETX(),
	}
	for name, proto := range runners {
		run := func(nw *omnc.Network, src, dst int, cfg omnc.SessionConfig) (*omnc.SessionStats, error) {
			return omnc.Run(nw, src, dst, proto, cfg)
		}
		for _, withFaults := range []bool{false, true} {
			name, run, withFaults := name, run, withFaults
			label := name + "/fault-free"
			if withFaults {
				label = name + "/faulted"
			}
			t.Run(label, func(t *testing.T) {
				t.Parallel()
				var ref detRun
				for i, workers := range detWorkerCounts {
					buf := omnc.NewTraceBuffer()
					cfg := chaosConfig(4242, nil) // identical seed in every configuration
					cfg.Trace = buf
					cfg.Report = true
					cfg.MaxGenerations = 3
					cfg.EngineWorkers = workers
					if withFaults {
						cfg.Faults = plan
					}
					st, err := run(nw, eps.Src, eps.Dst, cfg)
					got := detRun{stats: st, traceJSONL: traceBytes(t, buf), reportJSON: reportJSON(t, st)}
					if err != nil {
						got.errText = err.Error()
					}
					if i == 0 {
						ref = got
						continue
					}
					compareRuns(t, ref, got, fmt.Sprintf("%s workers=%d", label, workers))
				}
			})
		}
	}
}

func TestEngineDeterminismMultiSession(t *testing.T) {
	nw, err := omnc.GenerateNetwork(40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	sessions := findMultiSessions(t, nw, 2)
	protect := make(map[int]bool)
	for _, ep := range sessions {
		protect[ep.Src] = true
		protect[ep.Dst] = true
	}
	plan := detFaultPlan(t, nw, protect, 7301)

	for pname, proto := range chaosProtocols() {
		for _, withFaults := range []bool{false, true} {
			pname, proto, withFaults := pname, proto, withFaults
			label := pname + "/fault-free"
			if withFaults {
				label = pname + "/faulted"
			}
			t.Run(label, func(t *testing.T) {
				t.Parallel()
				var ref detRun
				for i, workers := range detWorkerCounts {
					buf := omnc.NewTraceBuffer()
					cfg := chaosConfig(4711, nil)
					cfg.Trace = buf
					cfg.MaxGenerations = 3
					cfg.EngineWorkers = workers
					if withFaults {
						cfg.Faults = plan
					}
					ms, err := omnc.RunMulti(nw, sessions, proto, cfg)
					got := detRun{multi: ms, traceJSONL: traceBytes(t, buf)}
					if err != nil {
						got.errText = err.Error()
					}
					if ms != nil {
						// Error values don't compare structurally; fold
						// their texts into errText and compare the rest.
						for si, serr := range ms.SessionErrors {
							if serr != nil {
								got.errText += fmt.Sprintf("|s%d:%v", si, serr)
							}
						}
						msCopy := *ms
						msCopy.SessionErrors = nil
						got.multi = &msCopy
					}
					if i == 0 {
						ref = got
						continue
					}
					compareRuns(t, ref, got, fmt.Sprintf("%s workers=%d", label, workers))
				}
			})
		}
	}
}
