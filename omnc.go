// Package omnc is a Go implementation of OMNC — Optimized Multipath Network
// Coding in lossy wireless networks (Zhang & Li, ICDCS 2008) — together with
// the baselines and the emulation substrate the paper evaluates against.
//
// The package offers four layers:
//
//   - Topology: random lossy wireless deployments with the paper's PHY model
//     (GenerateNetwork, NetworkFromMatrix, NetworkFromPositions).
//   - Optimization: node selection and the distributed rate-control
//     algorithm of the paper's Table 1, plus the centralized sUnicast LP
//     (SelectForwarders, OptimizeRates, SolveOptimalRates).
//   - Coding: random linear network coding over GF(2^8) with progressive
//     Gauss-Jordan decoding (NewGeneration, NewEncoder, NewRecoder,
//     NewDecoder).
//   - Emulation: end-to-end unicast sessions on a discrete-event wireless
//     channel through one entry point — Run(net, src, dst, proto, cfg) —
//     where proto is a Protocol value from the OMNC, MORE, OldMORE or ETX
//     constructors; RunMulti(net, sessions, proto, cfg) runs several
//     contending sessions of the same protocol on one shared channel. The
//     coding scheme and redundancy are session parameters
//     (SessionConfig.Scheme, SessionConfig.Redundancy).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for how every
// figure of the paper is regenerated.
package omnc

import (
	"math/rand"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/faults"
	"omnc/internal/graph"
	"omnc/internal/protocol"
	"omnc/internal/report"
	"omnc/internal/routing"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrInvalidPHY matches any rejected PHY model (NetworkFromPositions,
	// GenerateNetwork with a partially specified PHY).
	ErrInvalidPHY = topology.ErrInvalidPHY
	// ErrNoRoute matches any routability failure between session endpoints,
	// whether node selection found no forwarder subgraph (coded protocols)
	// or Dijkstra found no path (ETX).
	ErrNoRoute = graph.ErrNoRoute
	// ErrInvalidSession matches any rejected multi-unicast session list:
	// out-of-range endpoints, a session whose source equals its destination,
	// or duplicated (src, dst) pairs.
	ErrInvalidSession = protocol.ErrInvalidSession
	// ErrInvalidFaultPlan matches any rejected fault plan: unordered or
	// overlapping events, out-of-range nodes, malformed episodes.
	ErrInvalidFaultPlan = faults.ErrInvalidPlan
	// ErrDestinationDown matches a session whose destination crashed with no
	// recovery scheduled before the horizon.
	ErrDestinationDown = protocol.ErrDestinationDown
	// ErrInvalidScheme matches a rejected coding scheme, whether an unknown
	// -scheme flag name (ParseScheme) or an out-of-range
	// SessionConfig.Scheme value (SessionConfig.Validate).
	ErrInvalidScheme = coding.ErrInvalidScheme
	// ErrInvalidRedundancy matches a rejected SessionConfig.Redundancy: the
	// factor must be 0 (rateless) or at least 1.
	ErrInvalidRedundancy = coding.ErrInvalidRedundancy
	// ErrInvalidField matches a rejected coefficient field, whether an
	// unknown -field flag name (ParseField) or a field/scheme combination the
	// coding layer cannot serve (Reed-Solomon is GF(2^8)-only).
	ErrInvalidField = coding.ErrInvalidField
)

// Re-exported types. The aliases keep the public API surface in one place
// while the implementations live in focused internal packages.
type (
	// Network is a wireless deployment: node positions plus lossy links.
	Network = topology.Network
	// PHY maps link distance to reception probability.
	PHY = topology.PHY
	// Point is a node position in meters.
	Point = topology.Point
	// TopologyConfig parameterizes random deployments.
	TopologyConfig = topology.Config

	// Subgraph is a session's selected forwarder set.
	Subgraph = core.Subgraph
	// RateOptions tunes the distributed rate-control algorithm (Table 1).
	RateOptions = core.Options
	// RateResult is the optimized rate allocation.
	RateResult = core.Result
	// LPResult is the centralized sUnicast optimum.
	LPResult = core.LPResult

	// CodingParams fixes generation size, block size and the arithmetic
	// kernel.
	CodingParams = coding.Params
	// Scheme selects the coding strategy of a session: full-recoding RLNC
	// (the default), end-to-end RLNC, or source-only Reed-Solomon.
	Scheme = coding.Scheme
	// Field selects the coefficient field of a session's code: Field8
	// (GF(2^8), the paper's default) or Field16 (GF(2^16)).
	Field = coding.Field
	// Generation holds one generation of source blocks.
	Generation = coding.Generation
	// Packet is one coded packet.
	Packet = coding.Packet
	// Encoder emits random linear combinations at the source.
	Encoder = coding.Encoder
	// RSEncoder emits systematic Reed-Solomon shards at the source
	// (SchemeRS).
	RSEncoder = coding.RSEncoder
	// Recoder re-encodes buffered innovative packets at a forwarder.
	Recoder = coding.Recoder
	// ForwardBuffer queues innovative packets verbatim at a non-recoding
	// forwarder (SchemeRLNCE2E, SchemeRS).
	ForwardBuffer = coding.ForwardBuffer
	// Decoder progressively decodes a generation at the destination.
	Decoder = coding.Decoder

	// SessionConfig parameterizes one emulated unicast session.
	SessionConfig = protocol.Config
	// SessionStats summarizes one emulated session.
	SessionStats = protocol.Stats
	// Protocol is a named, runnable forwarding protocol; obtain one from the
	// OMNC, MORE, OldMORE or ETX constructors and pass it to Run.
	Protocol = protocol.Protocol
)

// Coding schemes, settable as SessionConfig.Scheme and spelled "rlnc",
// "rlnc-e2e" and "rs" by the CLI -scheme flags (Scheme.String/ParseScheme).
const (
	// SchemeRLNC is the paper's full-recoding RLNC: every forwarder
	// re-encodes over its buffered subspace, refreshing redundancy per hop.
	SchemeRLNC = coding.SchemeRLNC
	// SchemeRLNCE2E is end-to-end RLNC: only the source codes; forwarders
	// relay innovative packets verbatim.
	SchemeRLNCE2E = coding.SchemeRLNCE2E
	// SchemeRS is source-only systematic Reed-Solomon over GF(256).
	SchemeRS = coding.SchemeRS
)

// Coefficient fields, settable as CodingParams.Field and spelled "8" and
// "16" by the CLI -field flags (Field.String/ParseField).
const (
	// Field8 is GF(2^8) with byte coefficients — the paper's field and the
	// zero-value default; runs are bit-identical to builds without the knob.
	Field8 = coding.Field8
	// Field16 is GF(2^16): non-innovative arrivals drop from ~1/256 to
	// ~1/65536 per packet at the cost of doubled coefficient overhead.
	Field16 = coding.Field16
)

// ParseScheme maps a scheme name ("rlnc", "rlnc-e2e", "rs") to its value;
// unknown names fail with ErrInvalidScheme. The inverse of Scheme.String.
func ParseScheme(name string) (Scheme, error) { return coding.ParseScheme(name) }

// ParseField maps a field name ("8", "16", or "" for the default) to its
// value; unknown names fail with ErrInvalidField. The inverse of
// Field.String.
func ParseField(name string) (Field, error) { return coding.ParseField(name) }

// DefaultCodingParams are the paper's evaluation parameters: generations of
// 40 blocks of 1 KB (Sec. 5).
func DefaultCodingParams() CodingParams { return coding.DefaultParams() }

// GenerateNetwork deploys nodes uniformly at random with the given expected
// density (nodes per range disk, the paper uses 6) and the default lossy
// PHY.
func GenerateNetwork(nodes int, density float64, seed int64) (*Network, error) {
	return topology.Generate(topology.Config{
		Nodes:   nodes,
		Density: density,
		PHY:     topology.DefaultPHY(),
		Seed:    seed,
	})
}

// NetworkFromMatrix builds a network from an explicit link-probability
// matrix (prob[i][j] is the one-way reception probability of link i->j).
func NetworkFromMatrix(prob [][]float64) (*Network, error) {
	return topology.NewExplicit(prob)
}

// NetworkFromPositions builds a network from node coordinates under the
// given PHY. A zero-value PHY selects the default lossy model; any other
// PHY must pass PHY.Validate, so a partially filled model fails loudly with
// ErrInvalidPHY instead of being silently replaced.
func NetworkFromPositions(positions []Point, phy PHY) (*Network, error) {
	if phy == (PHY{}) {
		phy = topology.DefaultPHY()
	}
	if err := phy.Validate(); err != nil {
		return nil, err
	}
	return topology.FromPositions(positions, phy)
}

// DefaultPHY returns the lossy PHY model (mean neighbour link quality
// ~0.58); use PHY.CalibrateGain to retune transmit power.
func DefaultPHY() PHY { return topology.DefaultPHY() }

// SelectForwarders runs the decentralized node selection of Sec. 4 for a
// unicast session, returning the forwarder subgraph the optimization and
// the protocols operate on.
func SelectForwarders(net *Network, src, dst int) (*Subgraph, error) {
	return core.SelectNodes(net, src, dst)
}

// OptimizeRates runs the distributed rate-control algorithm (Table 1) on a
// selected subgraph and returns the per-node broadcast/encoding rates, the
// per-link information rates, and the throughput estimate.
func OptimizeRates(sg *Subgraph, opts RateOptions) (*RateResult, error) {
	return core.NewRateController(sg, opts).Run()
}

// SolveOptimalRates solves the sUnicast linear program (1)-(5) centrally
// with a simplex solver — the reference the distributed algorithm converges
// to.
func SolveOptimalRates(sg *Subgraph, capacity float64) (*LPResult, error) {
	return core.SolveLP(sg, capacity)
}

// NewGeneration builds a generation from raw data, zero-padding the final
// block.
func NewGeneration(id int, params CodingParams, data []byte) (*Generation, error) {
	return coding.NewGeneration(id, params, data)
}

// NewEncoder returns a source encoder for the generation drawing
// coefficients from rng.
func NewEncoder(gen *Generation, rng *rand.Rand) *Encoder {
	return coding.NewEncoder(gen, rng)
}

// NewRecoder returns a forwarder's re-encoding buffer for the identified
// generation.
func NewRecoder(generation int, params CodingParams, rng *rand.Rand) (*Recoder, error) {
	return coding.NewRecoder(generation, params, rng)
}

// NewDecoder returns a progressive Gauss-Jordan decoder for the identified
// generation.
func NewDecoder(generation int, params CodingParams) (*Decoder, error) {
	return coding.NewDecoder(generation, params)
}

// OMNC is the paper's protocol: node selection, distributed rate control
// (Table 1), and rate-driven re-encoding forwarders. opts tunes the rate
// controller; the zero value selects its defaults. Under RunMulti the
// protocol allocates rates jointly across sessions (congestion prices shared
// per physical node) instead of per session.
func OMNC(opts RateOptions) Protocol {
	return protocol.NewProtocol("omnc", protocol.OMNC(opts)).
		WithMulti(protocol.OMNCMulti(opts))
}

// MORE is the SIGCOMM'07 opportunistic-routing baseline: TX-credit
// forwarding from the ETX heuristic, no rate control.
func MORE() Protocol {
	return protocol.NewProtocol("more", routing.MORE())
}

// OldMORE is the min-cost transmission-plan baseline in the spirit of Lun et
// al.: pruned forwarders, no rate control.
func OldMORE() Protocol {
	return protocol.NewProtocol("oldmore", routing.OldMORE())
}

// ETX is traditional best-path routing on the ETX metric with MAC-layer
// retransmissions — the paper's throughput-gain baseline. No coding, no
// multipath.
func ETX() Protocol {
	return routing.ETXProtocol()
}

// Run emulates one unicast session from src to dst under the given protocol
// and returns its statistics. All protocols run over the same selected
// subgraph and channel model, so their results compare like with like.
func Run(net *Network, src, dst int, proto Protocol, cfg SessionConfig) (*SessionStats, error) {
	return proto.Run(net, src, dst, cfg)
}

// Extension types (beyond the paper's single-unicast evaluation; see
// DESIGN.md "Extensions").
type (
	// DriftConfig injects link-quality drift and node failures into a
	// long-lived session (Sec. 4's re-initiation scenario).
	DriftConfig = protocol.DriftConfig
	// DriftStats aggregates a session under dynamics.
	DriftStats = protocol.DriftStats
	// Endpoints identifies one session of a multiple-unicast run.
	Endpoints = protocol.Endpoints
	// MultiStats aggregates a multiple-unicast emulation: per-session
	// statistics plus aggregate throughput and Jain's fairness index.
	MultiStats = protocol.MultiStats
	// MultiSession is one session of a joint rate-control problem.
	MultiSession = core.MultiSession
	// MultiResult is the joint rate allocation.
	MultiResult = core.MultiResult
)

// RunOMNCWithDrift emulates a long-lived OMNC session whose link qualities
// drift (and whose forwarders optionally fail): node selection and rate
// allocation re-initiate at every epoch, and the re-initiation overhead is
// charged against throughput (Sec. 4).
func RunOMNCWithDrift(net *Network, src, dst int, cfg SessionConfig, drift DriftConfig) (*DriftStats, error) {
	return protocol.RunWithDrift(net, src, dst, protocol.OMNC(core.Options{}), cfg, drift)
}

// OptimizeRatesJointly allocates rates to several concurrent unicast
// sessions sharing the channel: per-session SUB1/SUB2 with congestion
// prices shared per network node (the paper's multiple-unicast extension).
func OptimizeRatesJointly(sessions []MultiSession, opts RateOptions) (*MultiResult, error) {
	mc, err := core.NewMultiRateController(sessions, opts)
	if err != nil {
		return nil, err
	}
	return mc.Run()
}

// RunMulti emulates several unicast sessions of one protocol sharing the
// channel simultaneously — the multiple-unicast scenario of the paper's
// conclusion. All sessions attach to one event engine and one MAC over the
// full network, so they genuinely contend for air time; invalid session
// lists fail with ErrInvalidSession. OMNC sessions get their rates from the
// joint controller; MORE, OldMORE and ETX contend uncoordinated.
func RunMulti(net *Network, sessions []Endpoints, proto Protocol, cfg SessionConfig) (*MultiStats, error) {
	return protocol.RunMulti(net, sessions, proto, cfg)
}

// Tracing types: attach a TraceBuffer (or any TraceRecorder) to
// SessionConfig.Trace to capture per-packet protocol events.
type (
	// TraceRecorder consumes protocol events.
	TraceRecorder = trace.Recorder
	// TraceEvent is one protocol occurrence.
	TraceEvent = trace.Event
	// TraceEventType classifies protocol events.
	TraceEventType = trace.EventType
	// TraceBuffer is an in-memory recorder with query helpers.
	TraceBuffer = trace.Buffer
)

// Trace event types.
const (
	TraceTx         = trace.EventTx
	TraceRx         = trace.EventRx
	TraceInnovative = trace.EventInnovative
	TraceDiscard    = trace.EventDiscard
	TraceDecode     = trace.EventDecode
	TraceGeneration = trace.EventGeneration
)

// NewTraceBuffer returns an empty in-memory trace recorder.
func NewTraceBuffer() *TraceBuffer { return trace.NewBuffer() }

// Observability report types: set SessionConfig.Report and a session fills
// SessionStats.Report with per-node counters, the per-link delivery matrix,
// MAC airtime, latency/queue histograms, the destination's rank-progress
// timeline and a fault/replan summary. The hooks follow the fault overlay's
// nil-until-enabled contract, so runs with Report unset stay bit-identical
// and allocation-free (see DESIGN.md).
type (
	// Report is one session's observability report, JSON-encodable
	// (`omnc-sim -report out.json` writes exactly this).
	Report = report.Report
	// ReportNodeCounters is one node's packet counters within a Report.
	ReportNodeCounters = report.NodeCounters
	// ReportHistogram is a fixed-bucket histogram within a Report.
	ReportHistogram = report.Histogram
)

// Fault injection types: attach a FaultPlan to SessionConfig.Faults to
// schedule node crashes, link flaps and Gilbert-Elliott burst-loss episodes
// against an emulated session. The protocols re-optimize at each topology
// change; a session whose destination crashes for good fails with
// ErrDestinationDown.
type (
	// FaultPlan is an ordered schedule of fault events, JSON-encodable.
	FaultPlan = faults.Plan
	// FaultEvent is one timed fault.
	FaultEvent = faults.Event
	// FaultKind classifies fault events.
	FaultKind = faults.Kind
	// RandomFaultPlanConfig parameterizes RandomFaultPlan.
	RandomFaultPlanConfig = faults.RandomPlanConfig
)

// Fault event kinds.
const (
	FaultNodeCrash   = faults.NodeCrash
	FaultNodeRecover = faults.NodeRecover
	FaultLinkFlap    = faults.LinkFlap
	FaultBurstLoss   = faults.BurstLoss
)

// DecodeFaultPlan parses a JSON fault plan and validates it; failures wrap
// ErrInvalidFaultPlan. It never panics on malformed input.
func DecodeFaultPlan(data []byte) (*FaultPlan, error) { return faults.DecodePlan(data) }

// RandomFaultPlan samples a valid randomized fault plan — Poisson arrivals
// per fault process, episodes that never overlap on a link — reproducible
// from its seed.
func RandomFaultPlan(cfg RandomFaultPlanConfig) (*FaultPlan, error) { return faults.RandomPlan(cfg) }
