package omnc_test

import (
	"reflect"
	"testing"

	"omnc"
	"omnc/internal/seedmix"
	"omnc/internal/trace"
)

// reportPlan draws a random fault plan for the chaos session that leaves the
// destination alive, so every protocol finishes normally with a report.
func reportPlan(t *testing.T, cs *chaosSession) *omnc.FaultPlan {
	t.Helper()
	for i := int64(0); i < 50; i++ {
		plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
			Nodes:        cs.nodes,
			Links:        cs.links,
			Horizon:      10,
			CrashRate:    0.15,
			MeanDowntime: 3,
			FlapRate:     0.1,
			BurstRate:    0.1,
			BadFactor:    0.1,
			Seed:         seedmix.Derive(4000, i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Events) > 0 && !planKillsDst(plan, cs.dst) {
			return plan
		}
	}
	t.Fatal("no survivable non-empty plan in 50 draws")
	return nil
}

// TestReportReconcilesWithTrace is the tentpole's accounting property: a
// session run with both the raw trace and the aggregated report enabled must
// tell the same story — every report total equals the count of the matching
// trace events, with no hook site missed or double-counted.
func TestReportReconcilesWithTrace(t *testing.T) {
	cs := newChaosSession(t, 5)
	plan := reportPlan(t, cs)
	for name, proto := range chaosProtocols() {
		t.Run(name, func(t *testing.T) {
			buf := omnc.NewTraceBuffer()
			cfg := chaosConfig(11, plan)
			cfg.Trace = buf
			cfg.Report = true
			st, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := st.Report
			if rep == nil {
				t.Fatal("Config.Report set but Stats.Report is nil")
			}
			if rep.Protocol != st.Policy || rep.Throughput != st.Throughput ||
				rep.GenerationsDecoded != st.GenerationsDecoded {
				t.Fatalf("report header disagrees with stats: %+v vs %+v", rep, st)
			}
			if rep.Faults.Replans != buf.Count(trace.EventReplan) {
				t.Errorf("replans: report %d, trace %d", rep.Faults.Replans, buf.Count(trace.EventReplan))
			}
			if name == "etx" {
				// ETX traces only decode and replan events; the packet-level
				// totals have no trace counterpart to reconcile against.
				if rep.TotalTx() == 0 || rep.TotalRx() == 0 {
					t.Errorf("etx report counted no traffic: %+v", rep.Nodes)
				}
				return
			}
			if got, want := rep.TotalTx(), int64(buf.Count(trace.EventTx)); got != want {
				t.Errorf("tx frames: report %d, trace %d", got, want)
			}
			if got, want := rep.TotalRx(), int64(buf.Count(trace.EventRx)); got != want {
				t.Errorf("rx packets: report %d, trace %d", got, want)
			}
			if got, want := rep.TotalInnovative(), int64(buf.Count(trace.EventInnovative)); got != want {
				t.Errorf("innovative: report %d, trace %d", got, want)
			}
			if got, want := rep.TotalDiscarded(), int64(buf.Count(trace.EventDiscard)); got != want {
				t.Errorf("discarded: report %d, trace %d", got, want)
			}
			// Every reception is either innovative or discarded.
			if rep.TotalRx() != rep.TotalInnovative()+rep.TotalDiscarded() {
				t.Errorf("rx %d != innovative %d + discarded %d",
					rep.TotalRx(), rep.TotalInnovative(), rep.TotalDiscarded())
			}
			if rep.GenerationLatency == nil || rep.GenerationLatency.N != int64(buf.Count(trace.EventDecode)) {
				t.Errorf("generation latency histogram disagrees with decode events: %+v vs %d",
					rep.GenerationLatency, buf.Count(trace.EventDecode))
			}
			// The rank timeline is the destination's innovative-reception
			// series: nonempty, time-ordered, rank nondecreasing per
			// generation.
			if len(rep.RankTimeline) == 0 {
				t.Fatal("empty rank timeline on a decoding session")
			}
			lastT := 0.0
			lastRank := map[int]int{}
			for _, pt := range rep.RankTimeline {
				if pt.Time < lastT {
					t.Fatalf("rank timeline out of order at t=%v", pt.Time)
				}
				lastT = pt.Time
				if pt.Rank < lastRank[pt.Generation] {
					t.Fatalf("rank regressed in generation %d: %d -> %d",
						pt.Generation, lastRank[pt.Generation], pt.Rank)
				}
				lastRank[pt.Generation] = pt.Rank
			}
		})
	}
}

// TestReportDisabledIsInvisible pins the zero-cost contract at the Stats
// level: enabling reporting must change nothing but the Report field itself,
// fault plan or not.
func TestReportDisabledIsInvisible(t *testing.T) {
	cs := newChaosSession(t, 5)
	plans := map[string]*omnc.FaultPlan{"faultfree": nil, "faulted": reportPlan(t, cs)}
	for name, proto := range chaosProtocols() {
		for planName, plan := range plans {
			off, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, chaosConfig(13, plan))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, planName, err)
			}
			if off.Report != nil {
				t.Fatalf("%s/%s: Report non-nil without Config.Report", name, planName)
			}
			cfg := chaosConfig(13, plan)
			cfg.Report = true
			on, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, cfg)
			if err != nil {
				t.Fatalf("%s/%s with report: %v", name, planName, err)
			}
			if on.Report == nil {
				t.Fatalf("%s/%s: Config.Report set but Report is nil", name, planName)
			}
			stripped := *on
			stripped.Report = nil
			if !reflect.DeepEqual(off, &stripped) {
				t.Errorf("%s/%s: reporting perturbed the run:\n off: %+v\n on:  %+v",
					name, planName, off, &stripped)
			}
		}
	}
}

// TestReportMultiSession exercises the shared-engine placement: every session
// of a multi-unicast run carries its own report, and per-session counters stay
// separated (each destination's innovative count is its own, not the union).
func TestReportMultiSession(t *testing.T) {
	nw, err := omnc.GenerateNetwork(40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	sessions := findMultiSessions(t, nw, 2)
	cfg := chaosConfig(19, nil)
	cfg.Report = true
	ms, err := omnc.RunMulti(nw, sessions, omnc.OMNC(omnc.RateOptions{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range ms.PerSession {
		rep := st.Report
		if rep == nil {
			t.Fatalf("session %d: no report", i)
		}
		if rep.TotalRx() != rep.TotalInnovative()+rep.TotalDiscarded() {
			t.Errorf("session %d: rx %d != innovative %d + discarded %d",
				i, rep.TotalRx(), rep.TotalInnovative(), rep.TotalDiscarded())
		}
		if int64(st.InnovativeReceived) < rep.Nodes[len(rep.Nodes)-1].Innovative {
			// Nodes are subgraph-local; the destination is one of them. Its
			// innovative count can never exceed the session-wide stat.
			t.Errorf("session %d: report innovative exceeds session stat", i)
		}
		if rep.MAC.FramesSent == 0 || rep.Duration <= 0 {
			t.Errorf("session %d: report missing MAC/duration: %+v", i, rep.MAC)
		}
	}
}
