package omnc_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"omnc"
	"omnc/internal/experiments"
	"omnc/internal/seedmix"
)

// The chaos layer throws seeded random fault plans at every protocol and
// checks the invariants the fault subsystem promises:
//
//   - every run terminates, and the only abnormal outcome is a typed
//     ErrDestinationDown when the plan kills the destination for good;
//   - ErrDestinationDown occurs exactly when the plan predicts it;
//   - faults never create throughput beyond what the fault-free network
//     supports: a faulted run stays below the centralized LP optimum of the
//     full forwarder graph (plus slack). The bound is the LP optimum rather
//     than the protocol's own fault-free run because mid-session re-solves
//     on a masked subgraph can legitimately beat the initial allocation —
//     the distributed solver is approximate, and concentrating its budget
//     on the surviving path sometimes lands nearer the optimum than the
//     full-graph solution did;
//   - identical seeds give bit-identical statistics, re-run to re-run.
//
// Everything here must also pass under -race (the CI chaos smoke runs a
// subset with the race detector on).

// chaosPlans is how many random plans each protocol endures.
func chaosPlans(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 100
}

// chaosSession is the shared scenario: one lossy deployment, one placed
// session, short generations so a 10-second horizon decodes plenty.
type chaosSession struct {
	nw       *omnc.Network
	src, dst int
	nodes    []int    // crash candidates: the forwarder set, src excluded
	links    [][2]int // episode candidates: the forwarder links, deduped
}

func newChaosSession(t *testing.T, seed int64) *chaosSession {
	t.Helper()
	nw, err := omnc.GenerateNetwork(40, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Scan for a routable pair a few hops apart; deterministic in the seed.
	for src := 0; src < nw.Size(); src++ {
		for dst := src + 1; dst < nw.Size(); dst++ {
			sg, err := omnc.SelectForwarders(nw, src, dst)
			if err != nil || sg.Size() < 5 || sg.Size() > 12 {
				continue
			}
			cs := &chaosSession{nw: nw, src: src, dst: dst}
			for _, nid := range sg.Nodes {
				if nid != src {
					cs.nodes = append(cs.nodes, nid) // dst stays: ErrDestinationDown must trigger
				}
			}
			seen := make(map[[2]int]bool)
			for _, l := range sg.Links {
				a, b := sg.Nodes[l.From], sg.Nodes[l.To]
				if a > b {
					a, b = b, a
				}
				if !seen[[2]int{a, b}] {
					seen[[2]int{a, b}] = true
					cs.links = append(cs.links, [2]int{a, b})
				}
			}
			return cs
		}
	}
	t.Fatal("no suitable session in the deployment")
	return nil
}

func chaosConfig(seed int64, plan *omnc.FaultPlan) omnc.SessionConfig {
	return omnc.SessionConfig{
		Coding:        omnc.CodingParams{GenerationSize: 8, BlockSize: 4},
		AirPacketSize: 8 + 1024,
		Capacity:      2e4,
		Duration:      10,
		Seed:          seed,
		Faults:        plan,
	}
}

func chaosProtocols() map[string]omnc.Protocol {
	return map[string]omnc.Protocol{
		"omnc":    omnc.OMNC(omnc.RateOptions{}),
		"more":    omnc.MORE(),
		"oldmore": omnc.OldMORE(),
		"etx":     omnc.ETX(),
	}
}

// planKillsDst reports whether the plan leaves the destination down at the
// end — exactly the condition under which a session must finish with
// ErrDestinationDown.
func planKillsDst(plan *omnc.FaultPlan, dst int) bool {
	down := false
	for _, ev := range plan.Events {
		switch {
		case ev.Kind == omnc.FaultNodeCrash && ev.Node == dst:
			down = true
		case ev.Kind == omnc.FaultNodeRecover && ev.Node == dst:
			down = false
		}
	}
	return down
}

// TestChaosRandomPlans is the core property test: 100+ seeded random fault
// plans per protocol (25 under -short), every one checked for termination,
// typed failure, bounded throughput and (on a subset) bit-identical replay.
func TestChaosRandomPlans(t *testing.T) {
	cs := newChaosSession(t, 5)
	plans := chaosPlans(t)
	sg, err := omnc.SelectForwarders(cs.nw, cs.src, cs.dst)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := omnc.SolveOptimalRates(sg, 2e4)
	if err != nil {
		t.Fatal(err)
	}
	for name, proto := range chaosProtocols() {
		t.Run(name, func(t *testing.T) {
			base, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, chaosConfig(11, nil))
			if err != nil {
				t.Fatalf("fault-free baseline: %v", err)
			}
			// Faults restrict the network, so no faulted run may beat the
			// unrestricted optimum. One generation of decoded payload per
			// horizon second covers quantization at the horizon edge.
			limit := lp.Gamma
			if base.Throughput > limit {
				limit = base.Throughput
			}
			slack := float64(8*1024) / 10
			downs := 0
			for i := 0; i < plans; i++ {
				plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
					Nodes:        cs.nodes,
					Links:        cs.links,
					Horizon:      10,
					CrashRate:    0.15,
					MeanDowntime: 3,
					FlapRate:     0.1,
					BurstRate:    0.1,
					BadFactor:    0.1,
					Seed:         seedmix.Derive(1000, int64(i)),
				})
				if err != nil {
					t.Fatalf("plan %d: %v", i, err)
				}
				st, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, chaosConfig(11, plan))
				expectDown := planKillsDst(plan, cs.dst)
				if expectDown {
					downs++
					if !errors.Is(err, omnc.ErrDestinationDown) {
						t.Fatalf("plan %d kills the destination but err = %v", i, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("plan %d: %v", i, err)
				}
				if st.Throughput > limit*1.05+slack {
					t.Fatalf("plan %d: faulted throughput %.0f exceeds the fault-free bound %.0f",
						i, st.Throughput, limit)
				}
				// NodeUtility is the fraction of selected nodes that carried
				// traffic; with the destination (which never transmits)
				// excluded from the denominator it is a true ratio in [0, 1]
				// no matter which forwarders a fault plan silences.
				if st.NodeUtility < 0 || st.NodeUtility > 1 {
					t.Fatalf("plan %d: NodeUtility %v outside [0, 1]", i, st.NodeUtility)
				}
				if i%10 == 0 {
					again, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, chaosConfig(11, plan))
					if err != nil {
						t.Fatalf("plan %d replay: %v", i, err)
					}
					if !reflect.DeepEqual(st, again) {
						t.Fatalf("plan %d: replay drifted:\n got %+v\nwant %+v", i, again, st)
					}
				}
			}
			if downs == 0 {
				t.Error("no plan ever killed the destination; the typed-error path went unexercised")
			}
		})
	}
}

// TestChaosFaultFreeBitIdentity pins the subsystem's zero-cost contract: a
// nil plan and an installed-but-empty plan produce byte-identical statistics
// for every protocol — installing the injector must not perturb a single RNG
// draw or event timestamp.
func TestChaosFaultFreeBitIdentity(t *testing.T) {
	cs := newChaosSession(t, 5)
	for name, proto := range chaosProtocols() {
		bare, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, chaosConfig(17, nil))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		empty, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, chaosConfig(17, &omnc.FaultPlan{}))
		if err != nil {
			t.Fatalf("%s with empty plan: %v", name, err)
		}
		if !reflect.DeepEqual(bare, empty) {
			t.Errorf("%s: empty fault plan perturbed the run:\n nil:   %+v\n empty: %+v", name, bare, empty)
		}
	}
}

// TestChaosSchemes extends the chaos coverage across the coding-scheme
// strategy layer: every scheme endures random fault plans (at least one
// each, several in full mode) under the same invariants as
// TestChaosRandomPlans — termination, typed destination-death errors, and
// bit-identical replay. Crash-released ForwardBuffer stores and RS shard
// emissions thus meet node churn, not just clean sessions.
func TestChaosSchemes(t *testing.T) {
	cs := newChaosSession(t, 5)
	plans := 2
	if !testing.Short() {
		plans = 8
	}
	proto := omnc.OMNC(omnc.RateOptions{})
	for _, scheme := range []omnc.Scheme{omnc.SchemeRLNC, omnc.SchemeRLNCE2E, omnc.SchemeRS} {
		t.Run(scheme.String(), func(t *testing.T) {
			for i := 0; i < plans; i++ {
				plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
					Nodes:        cs.nodes,
					Links:        cs.links,
					Horizon:      10,
					CrashRate:    0.15,
					MeanDowntime: 3,
					FlapRate:     0.1,
					BurstRate:    0.1,
					BadFactor:    0.1,
					Seed:         seedmix.Derive(2000, int64(int(scheme)*plans+i)),
				})
				if err != nil {
					t.Fatalf("plan %d: %v", i, err)
				}
				cfg := chaosConfig(13, plan)
				cfg.Scheme = scheme
				cfg.Redundancy = 2.5
				st, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, cfg)
				if planKillsDst(plan, cs.dst) {
					if !errors.Is(err, omnc.ErrDestinationDown) {
						t.Fatalf("plan %d kills the destination but err = %v", i, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("plan %d: %v", i, err)
				}
				again, err := omnc.Run(cs.nw, cs.src, cs.dst, proto, cfg)
				if err != nil {
					t.Fatalf("plan %d replay: %v", i, err)
				}
				if !reflect.DeepEqual(st, again) {
					t.Fatalf("plan %d: replay drifted:\n got %+v\nwant %+v", i, again, st)
				}
			}
		})
	}
}

// TestChaosWorkersInvariant re-runs a small fault-churn experiment serially
// and with four workers: the aggregated points must match exactly, because
// every cell's plan and trial seed derive from its index, not from
// scheduling order.
func TestChaosWorkersInvariant(t *testing.T) {
	run := func(workers int) *experiments.FaultChurn {
		t.Helper()
		res, err := experiments.RunFaultChurn(experiments.FaultsConfig{
			Nodes: 60, Density: 6, Sessions: 2, MinHops: 2, MaxHops: 6,
			Duration: 20, CBRRate: 1e4, ChurnRates: []float64{0, 5},
			Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial.Points, parallel.Points) {
		t.Fatalf("worker count changed the results:\n 1: %+v\n 4: %+v", serial.Points, parallel.Points)
	}
}

// TestChaosMultiSessionRace drives several contending sessions through
// crash/recover churn across parallel trials — under -race this extends the
// pool-aliasing coverage to fault-released packet ownership (a crashed
// node's parked frames return to the arena while other trials are running).
// Each trial also replays itself and demands bit-identical aggregates.
func TestChaosMultiSessionRace(t *testing.T) {
	nw, err := omnc.GenerateNetwork(40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Two fixed sessions a few hops apart, endpoints protected from crashes.
	sessions := findMultiSessions(t, nw, 2)
	protect := make(map[int]bool)
	for _, ep := range sessions {
		protect[ep.Src] = true
		protect[ep.Dst] = true
	}
	var candidates []int
	for n := 0; n < nw.Size(); n++ {
		if !protect[n] {
			candidates = append(candidates, n)
		}
	}
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
				Nodes:        candidates,
				Horizon:      10,
				CrashRate:    0.4,
				MeanDowntime: 2,
				Seed:         seedmix.Derive(2000, int64(trial)),
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := chaosConfig(seedmix.Derive(3000, int64(trial)), plan)
			first, err := omnc.RunMulti(nw, sessions, omnc.OMNC(omnc.RateOptions{}), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, serr := range first.SessionErrors {
				if serr != nil {
					t.Fatalf("session %d failed despite protected endpoints: %v", i, serr)
				}
			}
			again, err := omnc.RunMulti(nw, sessions, omnc.OMNC(omnc.RateOptions{}), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("multi-session replay drifted:\n got %+v\nwant %+v", again, first)
			}
		})
	}
}

// findMultiSessions picks n disjoint routable endpoint pairs.
func findMultiSessions(t *testing.T, nw *omnc.Network, n int) []omnc.Endpoints {
	t.Helper()
	var out []omnc.Endpoints
	used := make(map[int]bool)
	for src := 0; src < nw.Size() && len(out) < n; src++ {
		if used[src] {
			continue
		}
		for dst := 0; dst < nw.Size(); dst++ {
			if dst == src || used[dst] {
				continue
			}
			sg, err := omnc.SelectForwarders(nw, src, dst)
			if err != nil || sg.Size() < 4 || sg.Size() > 10 {
				continue
			}
			out = append(out, omnc.Endpoints{Src: src, Dst: dst})
			used[src], used[dst] = true, true
			break
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d of %d sessions", len(out), n)
	}
	return out
}
