// Benchmarks regenerating every table and figure of the paper's evaluation
// (see EXPERIMENTS.md for the measured-vs-paper comparison) plus the
// ablations DESIGN.md calls out. Each figure bench runs a scaled-down
// version of the corresponding experiment and reports the headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced quantities.
package omnc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/experiments"
	"omnc/internal/gf256"
	"omnc/internal/metrics"
	"omnc/internal/protocol"
	"omnc/internal/sessionbench"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// benchConfig is a small but representative comparison experiment: the
// paper's topology and air frames, few sessions, rank-fidelity payloads.
func benchConfig(seed int64) experiments.Config {
	return experiments.Config{
		Nodes:               200,
		Density:             6,
		Sessions:            3,
		MinHops:             4,
		MaxHops:             10,
		Duration:            150,
		Capacity:            2e4,
		CBRRate:             1e4,
		Coding:              coding.Params{GenerationSize: 40, BlockSize: 8, Strategy: gf256.StrategyAccel},
		AirPacketSize:       40 + 1024,
		QueueSampleInterval: 0.5,
		Seed:                seed,
	}
}

func meanOf(cdfs map[string]*metrics.CDF, name string) float64 {
	if c, ok := cdfs[name]; ok && c.Len() > 0 {
		return c.Mean()
	}
	return 0
}

// BenchmarkFig1Convergence regenerates Fig. 1: the distributed rate-control
// algorithm on the sample topology. Reports iterations to convergence.
func BenchmarkFig1Convergence(b *testing.B) {
	var iters float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1Convergence(experiments.Fig1Config{})
		if err != nil {
			b.Fatal(err)
		}
		iters = float64(res.Iterations)
	}
	b.ReportMetric(iters, "iterations")
}

// BenchmarkFig2Lossy regenerates Fig. 2 (left): throughput gains over ETX in
// the lossy network. Reports the mean gains (paper: OMNC 2.45, MORE 1.67,
// oldMORE 1.12).
func BenchmarkFig2Lossy(b *testing.B) {
	var omncGain, moreGain, oldGain float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(benchConfig(11))
		if err != nil {
			b.Fatal(err)
		}
		gains := c.GainCDFs()
		omncGain = meanOf(gains, experiments.ProtoOMNC)
		moreGain = meanOf(gains, experiments.ProtoMORE)
		oldGain = meanOf(gains, experiments.ProtoOldMORE)
	}
	b.ReportMetric(omncGain, "omnc-gain")
	b.ReportMetric(moreGain, "more-gain")
	b.ReportMetric(oldGain, "oldmore-gain")
}

// BenchmarkFig2HighQuality regenerates Fig. 2 (right): gains when transmit
// power raises mean link quality to ~0.91 (paper: OMNC 1.12, MORE and
// oldMORE below 1).
func BenchmarkFig2HighQuality(b *testing.B) {
	cfg := benchConfig(12)
	cfg.MeanQuality = 0.91
	var omncGain, moreGain float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gains := c.GainCDFs()
		omncGain = meanOf(gains, experiments.ProtoOMNC)
		moreGain = meanOf(gains, experiments.ProtoMORE)
	}
	b.ReportMetric(omncGain, "omnc-gain")
	b.ReportMetric(moreGain, "more-gain")
}

// BenchmarkFig3QueueSize regenerates Fig. 3: time-averaged queue sizes
// (paper: OMNC 0.63, MORE 22).
func BenchmarkFig3QueueSize(b *testing.B) {
	cfg := benchConfig(13)
	cfg.Protocols = []string{experiments.ProtoOMNC, experiments.ProtoMORE}
	var omncQ, moreQ float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		queues := c.QueueCDFs()
		omncQ = meanOf(queues, experiments.ProtoOMNC)
		moreQ = meanOf(queues, experiments.ProtoMORE)
	}
	b.ReportMetric(omncQ, "omnc-queue")
	b.ReportMetric(moreQ, "more-queue")
}

// BenchmarkFig4Utility regenerates Fig. 4: node and path utility ratios
// (paper: oldMORE prunes aggressively; OMNC and MORE use nearly all nodes).
func BenchmarkFig4Utility(b *testing.B) {
	cfg := benchConfig(14)
	cfg.Protocols = []string{experiments.ProtoOMNC, experiments.ProtoOldMORE}
	var omncNode, oldNode, omncPath, oldPath float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		omncNode = meanOf(c.NodeUtilityCDFs(), experiments.ProtoOMNC)
		oldNode = meanOf(c.NodeUtilityCDFs(), experiments.ProtoOldMORE)
		omncPath = meanOf(c.PathUtilityCDFs(), experiments.ProtoOMNC)
		oldPath = meanOf(c.PathUtilityCDFs(), experiments.ProtoOldMORE)
	}
	b.ReportMetric(omncNode, "omnc-node-util")
	b.ReportMetric(oldNode, "oldmore-node-util")
	b.ReportMetric(omncPath, "omnc-path-util")
	b.ReportMetric(oldPath, "oldmore-path-util")
}

// BenchmarkRunComparisonWorkers measures the wall-clock scaling of the
// parallel trial executor on one multi-session comparison: the same
// experiment (identical output, bit for bit) at 1, 2 and 4 workers. On a
// 4+ core machine the workers=4 case should finish the sweep at least 2x
// faster than workers=1; compare the ns/op of the sub-benchmarks:
//
//	go test -bench BenchmarkRunComparisonWorkers -benchtime 1x
func BenchmarkRunComparisonWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchConfig(31)
			cfg.Sessions = 8
			cfg.Workers = workers
			var tp float64
			for i := 0; i < b.N; i++ {
				c, err := experiments.RunComparison(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tp = meanOf(c.GainCDFs(), experiments.ProtoOMNC)
			}
			b.ReportMetric(tp, "omnc-gain")
			b.ReportMetric(float64(cfg.Sessions)/b.Elapsed().Seconds()*float64(b.N), "sessions/s")
		})
	}
}

// benchSession is the allocation trajectory the repo records in
// BENCH_<n>.json: one emulated unicast session end to end (node selection,
// rate control, coding, MAC) with allocs/op and B/op reported. The scenario
// itself lives in internal/sessionbench so cmd/omnc-bench records exactly
// this workload; the regression gate lives in internal/coding's and
// internal/protocol's AllocsPerRun tests.
func benchSession(b *testing.B, scenario int) {
	s := sessionbench.Scenarios()[scenario]
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var tp float64
	for i := 0; i < b.N; i++ {
		st, err := s.Run(nw, src, dst)
		if err != nil {
			b.Fatal(err)
		}
		if st.GenerationsDecoded == 0 {
			b.Fatal("session decoded nothing")
		}
		tp = st.Throughput
	}
	b.ReportMetric(tp, "bytes/s")
}

func BenchmarkSessionOMNC(b *testing.B) { benchSession(b, 0) }

func BenchmarkSessionMORE(b *testing.B) { benchSession(b, 1) }

func BenchmarkSessionETX(b *testing.B) { benchSession(b, 2) }

// benchSessionScheme measures one coding-scheme session (the scenario lives
// in internal/sessionbench so cmd/omnc-bench records exactly this workload);
// the allocs/op numbers prove the strategy layer rides the pooled arena.
func benchSessionScheme(b *testing.B, scenario int) {
	s := sessionbench.SchemeScenarios()[scenario]
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var tp float64
	for i := 0; i < b.N; i++ {
		st, err := s.Run(nw, src, dst)
		if err != nil {
			b.Fatal(err)
		}
		if st.GenerationsDecoded == 0 {
			b.Fatal("session decoded nothing")
		}
		tp = st.Throughput
	}
	b.ReportMetric(tp, "bytes/s")
}

func BenchmarkSessionSchemeRLNC(b *testing.B) { benchSessionScheme(b, 0) }

func BenchmarkSessionSchemeRLNCE2E(b *testing.B) { benchSessionScheme(b, 1) }

func BenchmarkSessionSchemeRS(b *testing.B) { benchSessionScheme(b, 2) }

// benchMultiSession measures the multi-unicast hot path: two sessions of one
// protocol contending on a single shared engine and MAC (the scenario lives
// in internal/sessionbench so cmd/omnc-bench records exactly this workload).
func benchMultiSession(b *testing.B, scenario int) {
	s := sessionbench.MultiScenarios()[scenario]
	nw, _, _, err := sessionbench.Network()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var tp float64
	for i := 0; i < b.N; i++ {
		ms, err := s.Run(nw)
		if err != nil {
			b.Fatal(err)
		}
		for j, st := range ms.PerSession {
			if st.Throughput <= 0 {
				b.Fatalf("session %d delivered nothing", j)
			}
		}
		tp = ms.AggregateThroughput
	}
	b.ReportMetric(tp, "bytes/s")
}

func BenchmarkMultiSessionOMNC(b *testing.B) { benchMultiSession(b, 0) }

func BenchmarkMultiSessionETX(b *testing.B) { benchMultiSession(b, 1) }

// benchMultiSessionScaled measures the parallel-engine scaling workload:
// sixteen sessions on radio-isolated strips with full-size 1 KB blocks,
// identical emulated work at every worker count (the scenario lives in
// internal/sessionbench so cmd/omnc-bench records exactly this workload in
// BENCH_4.json). Compare the ns/op across the scenario ladder for the
// serial-vs-parallel speedup; the reported bytes/s must not move.
func benchMultiSessionScaled(b *testing.B, scenario int) {
	s := sessionbench.ScaledMultiScenarios()[scenario]
	nw, sessions, err := sessionbench.ScaledNetwork()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var tp float64
	for i := 0; i < b.N; i++ {
		ms, err := s.Run(nw, sessions)
		if err != nil {
			b.Fatal(err)
		}
		for j, st := range ms.PerSession {
			if st.Throughput <= 0 {
				b.Fatalf("session %d delivered nothing", j)
			}
		}
		tp = ms.AggregateThroughput
	}
	b.ReportMetric(tp, "bytes/s")
}

func BenchmarkMultiSessionScaledSerial(b *testing.B) { benchMultiSessionScaled(b, 0) }

func BenchmarkMultiSessionScaledWorkers2(b *testing.B) { benchMultiSessionScaled(b, 1) }

func BenchmarkMultiSessionScaledWorkers4(b *testing.B) { benchMultiSessionScaled(b, 2) }

func BenchmarkMultiSessionScaledWorkers8(b *testing.B) { benchMultiSessionScaled(b, 3) }

// BenchmarkTable1RateControl measures the distributed rate-control
// algorithm itself (Table 1) on a random selected subgraph.
func BenchmarkTable1RateControl(b *testing.B) {
	nw, err := topology.Generate(topology.Config{Nodes: 200, Density: 6, Seed: 15})
	if err != nil {
		b.Fatal(err)
	}
	sg := firstSession(b, nw)
	b.ResetTimer()
	var iters float64
	for i := 0; i < b.N; i++ {
		res, err := core.NewRateController(sg, core.Options{Capacity: 2e4}).Run()
		if err != nil {
			b.Fatal(err)
		}
		iters = float64(res.Iterations)
	}
	b.ReportMetric(iters, "iterations")
}

// BenchmarkSUnicastLP measures the centralized simplex solution of the
// sUnicast program on the same subgraph (the Sec. 5 optimized-throughput
// reference).
func BenchmarkSUnicastLP(b *testing.B) {
	nw, err := topology.Generate(topology.Config{Nodes: 200, Density: 6, Seed: 15})
	if err != nil {
		b.Fatal(err)
	}
	sg := firstSession(b, nw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveLP(sg, 2e4); err != nil {
			b.Fatal(err)
		}
	}
}

func firstSession(b *testing.B, nw *topology.Network) *core.Subgraph {
	b.Helper()
	for dst := 1; dst < nw.Size(); dst++ {
		sg, err := core.SelectNodes(nw, 0, dst)
		if err == nil && sg.Size() >= 8 {
			return sg
		}
	}
	b.Fatal("no usable session on the benchmark topology")
	return nil
}

// benchCodingStrategy encodes and progressively decodes one full generation
// of the paper's size (40 blocks x 1 KB) under the given GF(2^8) kernel —
// the Sec. 4 accelerated-coding comparison.
func benchCodingStrategy(b *testing.B, s gf256.Strategy) {
	params := coding.Params{GenerationSize: 40, BlockSize: 1024, Strategy: s}
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 40*1024)
	rng.Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := coding.NewGeneration(0, params, data)
		if err != nil {
			b.Fatal(err)
		}
		enc := coding.NewEncoder(gen, rng)
		dec, err := coding.NewDecoder(0, params)
		if err != nil {
			b.Fatal(err)
		}
		for !dec.Decoded() {
			if _, err := dec.Add(enc.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCodingAccelNaive(b *testing.B)    { benchCodingStrategy(b, gf256.StrategyNaive) }
func BenchmarkCodingAccelTable(b *testing.B)    { benchCodingStrategy(b, gf256.StrategyTable) }
func BenchmarkCodingAccelBitPlane(b *testing.B) { benchCodingStrategy(b, gf256.StrategyBitPlane) }
func BenchmarkCodingAccelFast(b *testing.B)     { benchCodingStrategy(b, gf256.StrategyAccel) }

// BenchmarkAblationUtilization sweeps OMNC's utilization target under the
// CSMA channel: rescaling the optimized rates below the constraint boundary
// trades rate for interference (see protocol.CSMAUtilization).
func BenchmarkAblationUtilization(b *testing.B) {
	nw, err := topology.Generate(topology.Config{Nodes: 150, Density: 6, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	sg := firstSession(b, nw)
	src, dst := sg.Nodes[sg.Src], sg.Nodes[sg.Dst]
	for _, eta := range []float64{0.25, 0.5, 0.75, 1.0} {
		eta := eta
		b.Run(utilName(eta), func(b *testing.B) {
			cfg := protocol.Config{
				Coding:        coding.Params{GenerationSize: 40, BlockSize: 8, Strategy: gf256.StrategyAccel},
				AirPacketSize: 40 + 1024,
				Capacity:      2e4,
				Duration:      150,
				Seed:          5,
				MAC:           sim.ModeCSMA,
			}
			var tp float64
			for i := 0; i < b.N; i++ {
				st, err := protocol.Run(nw, src, dst,
					protocol.OMNCAtUtilization(core.Options{}, eta), cfg)
				if err != nil {
					b.Fatal(err)
				}
				tp = st.Throughput
			}
			b.ReportMetric(tp, "bytes/s")
		})
	}
}

func utilName(eta float64) string {
	switch eta {
	case 0.25:
		return "eta=0.25"
	case 0.5:
		return "eta=0.50"
	case 0.75:
		return "eta=0.75"
	default:
		return "eta=1.00"
	}
}

// BenchmarkAblationMACMode contrasts the oracle scheduler with the CSMA
// contention model on one OMNC session (the MAC-sensitivity ablation of
// DESIGN.md).
func BenchmarkAblationMACMode(b *testing.B) {
	nw, err := topology.Generate(topology.Config{Nodes: 150, Density: 6, Seed: 22})
	if err != nil {
		b.Fatal(err)
	}
	sg := firstSession(b, nw)
	src, dst := sg.Nodes[sg.Src], sg.Nodes[sg.Dst]
	for _, mode := range []sim.Mode{sim.ModeOracle, sim.ModeCSMA} {
		mode := mode
		name := "oracle"
		if mode == sim.ModeCSMA {
			name = "csma"
		}
		b.Run(name, func(b *testing.B) {
			cfg := protocol.Config{
				Coding:        coding.Params{GenerationSize: 40, BlockSize: 8, Strategy: gf256.StrategyAccel},
				AirPacketSize: 40 + 1024,
				Capacity:      2e4,
				Duration:      150,
				Seed:          6,
				MAC:           mode,
			}
			var tp float64
			for i := 0; i < b.N; i++ {
				st, err := protocol.Run(nw, src, dst, protocol.OMNC(core.Options{}), cfg)
				if err != nil {
					b.Fatal(err)
				}
				tp = st.Throughput
			}
			b.ReportMetric(tp, "bytes/s")
		})
	}
}

// BenchmarkAblationPayloadFidelity verifies that shrinking BlockSize (rank
// fidelity) does not change protocol behaviour, only arithmetic cost —
// the substitution QuickConfig relies on.
func BenchmarkAblationPayloadFidelity(b *testing.B) {
	nw, err := topology.Generate(topology.Config{Nodes: 150, Density: 6, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	sg := firstSession(b, nw)
	src, dst := sg.Nodes[sg.Src], sg.Nodes[sg.Dst]
	for _, blockSize := range []int{8, 1024} {
		blockSize := blockSize
		name := "rank-fidelity"
		if blockSize == 1024 {
			name = "full-payload"
		}
		b.Run(name, func(b *testing.B) {
			cfg := protocol.Config{
				Coding:        coding.Params{GenerationSize: 40, BlockSize: blockSize, Strategy: gf256.StrategyAccel},
				AirPacketSize: 40 + 1024,
				Capacity:      2e4,
				Duration:      100,
				Seed:          9,
			}
			var tp float64
			for i := 0; i < b.N; i++ {
				st, err := protocol.Run(nw, src, dst, protocol.OMNC(core.Options{}), cfg)
				if err != nil {
					b.Fatal(err)
				}
				tp = st.Throughput
			}
			b.ReportMetric(tp, "bytes/s")
		})
	}
}
