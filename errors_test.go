package omnc_test

import (
	"errors"
	"testing"

	"omnc"
)

// TestInvalidPHYIsMatchable: a partially specified PHY fails loudly and the
// failure matches the ErrInvalidPHY sentinel.
func TestInvalidPHYIsMatchable(t *testing.T) {
	pts := []omnc.Point{{X: 0}, {X: 50}}
	for _, phy := range []omnc.PHY{
		{Range: 50},              // no width
		{Width: 0.2},             // no range
		{Range: -1, Width: 0.2},  // negative range
		{Range: 50, Width: -0.1}, // negative width
	} {
		_, err := omnc.NetworkFromPositions(pts, phy)
		if err == nil {
			t.Errorf("PHY %+v: expected error", phy)
			continue
		}
		if !errors.Is(err, omnc.ErrInvalidPHY) {
			t.Errorf("PHY %+v: error %v does not match ErrInvalidPHY", phy, err)
		}
	}
	// The zero value still selects the default model.
	if _, err := omnc.NetworkFromPositions(pts, omnc.PHY{}); err != nil {
		t.Errorf("zero-value PHY: %v", err)
	}
}

// TestNoRouteIsMatchable: disconnected endpoints surface as ErrNoRoute from
// both node selection and the unified Run entry point.
func TestNoRouteIsMatchable(t *testing.T) {
	// Two nodes far outside each other's 100 m range: no links at all.
	nw, err := omnc.NetworkFromPositions([]omnc.Point{{X: 0}, {X: 1000}}, omnc.PHY{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := omnc.SelectForwarders(nw, 0, 1); !errors.Is(err, omnc.ErrNoRoute) {
		t.Errorf("SelectForwarders error %v does not match ErrNoRoute", err)
	}
	for _, proto := range []omnc.Protocol{omnc.OMNC(omnc.RateOptions{}), omnc.ETX()} {
		_, err := omnc.Run(nw, 0, 1, proto, omnc.SessionConfig{Duration: 1})
		if !errors.Is(err, omnc.ErrNoRoute) {
			t.Errorf("%s: error %v does not match ErrNoRoute", proto.Name(), err)
		}
	}
}
